// A simulated directed physical link between two network nodes (replicas or
// switches) in the cluster's NetworkTopology (topology.h).
//
// A transfer serializes on the link's bandwidth — back-to-back transfers
// queue behind each other the way packets do on a NIC — and then pays the
// link's propagation latency on top. Since the topology routes EVERY
// cross-replica byte (IPC messages, journal shipping for migration, snapshot
// store chunk fetches, prefix-sharing warm imports) over these links, IPC
// traffic and migration traffic genuinely contend for the same wires: a
// migration flood delays concurrent IPC on any shared hop.
//
// Bandwidth and latency are per link: the default single-switch topology
// gives every link the uniform HardwareConfig::interconnect_* parameters,
// while multi-rack presets assign edge and uplink links their own values.
// TransmitFrom supports store-and-forward chaining: hop N of a multi-hop
// transfer cannot start serializing before hop N-1 delivered. Every transfer
// emits a span on the "net" trace track, and the stats record how long
// transfers waited behind earlier ones (queue_delay — the congestion signal).
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <string>

#include "src/model/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace symphony {

struct LinkStats {
  uint64_t transfers = 0;
  uint64_t bytes = 0;
  // Total time transfers spent queued behind earlier transfers still
  // serializing on this link (0 on an uncontended link).
  SimDuration queue_delay = 0;
};

class Link {
 public:
  // Uniform link: bandwidth/latency from the cost model's
  // HardwareConfig::interconnect_*. `cost` is required; `trace` is optional.
  Link(Simulator* sim, const CostModel* cost, TraceRecorder* trace,
       std::string name);

  // Per-link parameters (topology edge/uplink links).
  Link(Simulator* sim, double bandwidth, SimDuration latency,
       TraceRecorder* trace, std::string name);

  // Charges one transfer of `bytes` starting now and returns its absolute
  // arrival time: serialization queues behind earlier transfers still on the
  // wire, then the propagation latency applies.
  SimTime Transmit(uint64_t bytes, const std::string& label);

  // Same, but serialization cannot begin before `earliest` — the previous
  // hop's arrival when this link is a later hop of a multi-hop transfer.
  SimTime TransmitFrom(SimTime earliest, uint64_t bytes,
                       const std::string& label);

  double bandwidth() const { return bandwidth_; }
  SimDuration latency() const { return latency_; }
  const LinkStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  TraceRecorder* trace_;
  std::string name_;
  double bandwidth_;
  SimDuration latency_;
  SimTime busy_until_ = 0;
  LinkStats stats_;
};

}  // namespace symphony

#endif  // SRC_NET_LINK_H_
