#include "src/net/ipc_fabric.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"

namespace symphony {

IpcFabric::IpcFabric(Simulator* sim, const CostModel* cost, FaultPlan* faults,
                     TraceRecorder* trace, IpcFabricOptions options)
    : sim_(sim),
      cost_(cost),
      faults_(faults),
      trace_(trace),
      options_(options) {
  assert(sim != nullptr);
  assert(cost != nullptr);
}

void IpcFabric::AttachReplica(size_t index, LipRuntime* runtime) {
  if (index >= runtimes_.size()) {
    runtimes_.resize(index + 1, nullptr);
    dead_.resize(index + 1, false);
    replica_stats_.resize(index + 1);
  }
  runtimes_[index] = runtime;
}

void IpcFabric::MarkReplicaDead(size_t index) {
  if (index < dead_.size()) {
    dead_[index] = true;
  }
  DropReplicaWaiters(index);
}

Link& IpcFabric::LinkFor(size_t from, size_t to) {
  auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key, std::make_unique<Link>(
                               sim_, cost_, trace_,
                               "link:replica" + std::to_string(from) +
                                   "->replica" + std::to_string(to)))
             .first;
  }
  return *it->second;
}

IpcFabric::Message* IpcFabric::FindMessage(ChannelState& ch, uint64_t msg_id) {
  for (Message& msg : ch.queue) {
    if (msg.id == msg_id) {
      return &msg;
    }
  }
  return nullptr;
}

void IpcFabric::Send(size_t replica, LipId sender, const std::string& channel,
                     std::string message) {
  (void)sender;  // Channel identity is receiver-side; senders stay anonymous.
  ChannelState& ch = channels_[channel];
  ++replica_stats_[replica].sent;
  Message msg;
  msg.id = ch.next_send_id++;
  msg.origin = replica;
  msg.at = replica;
  msg.bytes = std::move(message);
  ch.queue.push_back(std::move(msg));
  // An unregistered channel parks the message at its origin; the first recv
  // homes the channel and routes everything queued.
  if (ch.registered) {
    RouteMessage(channel, ch, ch.queue.back());
    Drain(channel, ch);
  }
}

bool IpcFabric::TryRecv(size_t replica, LipId receiver,
                        const std::string& channel, std::string* message,
                        uint64_t* ordinal) {
  ChannelState& ch = channels_[channel];
  Register(channel, ch, replica, receiver);
  // FIFO fairness: a fresh receiver never overtakes parked waiters.
  if (!ch.waiters.empty()) {
    return false;
  }
  if (ch.queue.empty() || !ch.queue.front().available) {
    return false;
  }
  Message msg = std::move(ch.queue.front());
  ch.queue.pop_front();
  *message = std::move(msg.bytes);
  *ordinal = ch.next_recv_ordinal++;
  ++replica_stats_[replica].received;
  if (msg.origin == replica) {
    ++stats_.local_deliveries;
  }
  return true;
}

void IpcFabric::AddWaiter(size_t replica, LipId receiver,
                          const std::string& channel, ThreadId waiter,
                          std::string* slot, uint64_t resume_ordinal) {
  ChannelState& ch = channels_[channel];
  Register(channel, ch, replica, receiver);
  // A replayed thread's first re-park carries the ordinal it was waiting for
  // when its endpoint died. Replay fast-forwards threads in dispatch order,
  // not original park order, so slot it back by ordinal among its own LIP's
  // hinted waiters (live waiters — ordinal 0 — are never overtaken).
  auto pos = ch.waiters.end();
  while (resume_ordinal > 0 && pos != ch.waiters.begin()) {
    auto prev = std::prev(pos);
    if (prev->replica != replica || prev->lip != receiver ||
        prev->resume_ordinal <= resume_ordinal) {
      break;
    }
    pos = prev;
  }
  ch.waiters.insert(pos, Waiter{replica, receiver, waiter, slot,
                                resume_ordinal});
  Drain(channel, ch);
}

void IpcFabric::DropWaiters(size_t replica, LipId lip) {
  for (auto& [name, ch] : channels_) {
    std::deque<Waiter> kept;
    for (const Waiter& w : ch.waiters) {
      if (w.replica == replica && w.lip == lip) {
        continue;
      }
      kept.push_back(w);
    }
    ch.waiters = std::move(kept);
  }
}

void IpcFabric::DropReplicaWaiters(size_t replica) {
  for (auto& [name, ch] : channels_) {
    std::deque<Waiter> kept;
    for (const Waiter& w : ch.waiters) {
      if (w.replica == replica) {
        continue;
      }
      kept.push_back(w);
    }
    ch.waiters = std::move(kept);
  }
}

void IpcFabric::Register(const std::string& name, ChannelState& ch,
                         size_t replica, LipId lip) {
  if (ch.registered && ch.home == replica && ch.receiver == lip) {
    return;
  }
  bool rehome = ch.registered;
  ch.registered = true;
  ch.home = replica;
  ch.receiver = lip;
  if (rehome) {
    ++stats_.rehomes;
    if (trace_ != nullptr) {
      trace_->Instant("net", "rehome:" + name, sim_->now());
    }
  }
  // Re-route queued messages toward the (new) home. Ids first: a routed
  // message can be dropped (partition deadline), which erases from queue.
  std::vector<uint64_t> ids;
  for (const Message& msg : ch.queue) {
    if (!msg.in_flight) {
      ids.push_back(msg.id);
    }
  }
  for (uint64_t id : ids) {
    Message* msg = FindMessage(ch, id);
    if (msg == nullptr) {
      continue;
    }
    if (msg->at == replica) {
      msg->available = true;
      continue;
    }
    msg->available = false;
    if (rehome) {
      ++replica_stats_[msg->at].forwarded;
    }
    BeginTransfer(name, id);
  }
}

void IpcFabric::RehomeEndpoint(size_t old_replica, LipId old_lip,
                               size_t new_replica, LipId new_lip) {
  for (auto& [name, ch] : channels_) {
    if (!ch.registered || ch.home != old_replica || ch.receiver != old_lip) {
      continue;
    }
    ch.home = new_replica;
    ch.receiver = new_lip;
    ++stats_.rehomes;
    if (trace_ != nullptr) {
      trace_->Instant("net",
                      "rehome:" + name + ":replica" +
                          std::to_string(old_replica) + "->replica" +
                          std::to_string(new_replica),
                      sim_->now());
    }
    std::vector<uint64_t> ids;
    for (const Message& msg : ch.queue) {
      if (!msg.in_flight) {
        ids.push_back(msg.id);
      }
    }
    for (uint64_t id : ids) {
      Message* msg = FindMessage(ch, id);
      if (msg == nullptr) {
        continue;
      }
      if (msg->at == new_replica) {
        msg->available = true;
        continue;
      }
      msg->available = false;
      ++replica_stats_[msg->at].forwarded;
      BeginTransfer(name, id);
    }
    // In-flight messages arrive at the old home and forward from there
    // (Arrive sees the home mismatch).
    Drain(name, ch);
  }
}

void IpcFabric::RouteMessage(const std::string& name, ChannelState& ch,
                             Message& msg) {
  if (msg.at == ch.home) {
    msg.available = true;
    return;
  }
  BeginTransfer(name, msg.id);
}

SimDuration IpcFabric::RetryDelay(const std::string& name,
                                  const Message& msg) const {
  SimDuration base = options_.retry_base;
  for (uint32_t i = 1; i < msg.attempt && base < options_.retry_cap; ++i) {
    base *= 2;
  }
  base = std::min(base, options_.retry_cap);
  // One decision stream per (seed, channel, message, attempt) — the FaultPlan
  // keying discipline, so a replayed run re-draws identical backoffs.
  Rng rng(Mix64(options_.seed ^ Fnv1a(name)) ^
          Mix64(msg.id * 0x9e3779b97f4a7c15ULL + msg.attempt));
  double jitter =
      1.0 + options_.retry_jitter * (2.0 * rng.NextDouble() - 1.0);
  SimDuration delay =
      static_cast<SimDuration>(static_cast<double>(base) * jitter);
  return std::max<SimDuration>(delay, 1);
}

void IpcFabric::BeginTransfer(const std::string& name, uint64_t msg_id) {
  ChannelState& ch = channels_[name];
  Message* msg = FindMessage(ch, msg_id);
  if (msg == nullptr || msg->available || msg->in_flight || !ch.registered) {
    return;
  }
  size_t from = msg->at;
  size_t to = ch.home;
  if (from == to) {
    msg->available = true;
    Drain(name, ch);
    return;
  }
  SimTime now = sim_->now();
  if (faults_ != nullptr && faults_->OnIpcTransmit(from, to, now)) {
    ++stats_.partition_retries;
    if (msg->first_blocked < 0) {
      msg->first_blocked = now;
    }
    if (now - msg->first_blocked > options_.send_deadline) {
      DropMessage(name, ch, msg_id);
      return;
    }
    ++msg->attempt;
    msg->in_flight = true;  // The retry event owns the message until it fires.
    sim_->ScheduleAfter(RetryDelay(name, *msg), [this, name, msg_id] {
      ChannelState& chan = channels_[name];
      Message* m = FindMessage(chan, msg_id);
      if (m == nullptr) {
        return;
      }
      m->in_flight = false;
      if (m->available) {
        return;  // A rehome brought the home to the message meanwhile.
      }
      BeginTransfer(name, msg_id);
    });
    return;
  }
  msg->first_blocked = -1;
  msg->attempt = 0;
  ++stats_.cross_sends;
  SimTime arrival = LinkFor(from, to).Transmit(msg->bytes.size(), name);
  msg->in_flight = true;
  sim_->ScheduleAt(arrival,
                   [this, name, msg_id, to] { Arrive(name, msg_id, to); });
}

void IpcFabric::Arrive(const std::string& name, uint64_t msg_id, size_t at) {
  ChannelState& ch = channels_[name];
  Message* msg = FindMessage(ch, msg_id);
  if (msg == nullptr) {
    return;
  }
  msg->in_flight = false;
  msg->at = at;
  if (!ch.registered) {
    return;
  }
  if (at == ch.home) {
    msg->available = true;
    Drain(name, ch);
    return;
  }
  // The endpoint moved while the bytes were on the wire: forward.
  ++replica_stats_[at].forwarded;
  BeginTransfer(name, msg_id);
}

void IpcFabric::Drain(const std::string& name, ChannelState& ch) {
  while (!ch.queue.empty() && ch.queue.front().available &&
         !ch.waiters.empty()) {
    Waiter waiter = ch.waiters.front();
    ch.waiters.pop_front();
    LipRuntime* runtime =
        waiter.replica < runtimes_.size() ? runtimes_[waiter.replica] : nullptr;
    if (runtime == nullptr) {
      continue;  // Unattached replica: discard the stale waiter.
    }
    Message& head = ch.queue.front();
    if (!runtime->DeliverToWaiter(waiter.thread, waiter.slot, name,
                                  ch.next_recv_ordinal, head.bytes)) {
      continue;  // Dead waiter: keep the message for the next one.
    }
    ++ch.next_recv_ordinal;
    ++replica_stats_[waiter.replica].received;
    if (head.origin == waiter.replica) {
      ++stats_.local_deliveries;
    }
    ch.queue.pop_front();
  }
}

void IpcFabric::DropMessage(const std::string& name, ChannelState& ch,
                            uint64_t msg_id) {
  for (auto it = ch.queue.begin(); it != ch.queue.end(); ++it) {
    if (it->id != msg_id) {
      continue;
    }
    ++ch.dropped;
    ++replica_stats_[it->at].dropped;
    ch.last_error = UnavailableError("ipc message on '" + name +
                                     "' dropped: partitioned past the send "
                                     "deadline");
    SYMPHONY_LOG(kDebug) << "ipc drop on '" << name << "' (message "
                         << msg_id << ")";
    if (trace_ != nullptr) {
      trace_->Instant("net", "drop:" + name, sim_->now());
    }
    ch.queue.erase(it);
    break;
  }
  Drain(name, ch);  // The next head may already be available.
}

ChannelView IpcFabric::View(const std::string& channel) const {
  ChannelView view;
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    return view;
  }
  const ChannelState& ch = it->second;
  view.registered = ch.registered;
  view.home = ch.home;
  view.receiver = ch.receiver;
  view.queued = ch.queue.size();
  view.waiters = ch.waiters.size();
  view.dropped = ch.dropped;
  view.last_error = ch.last_error;
  return view;
}

}  // namespace symphony
