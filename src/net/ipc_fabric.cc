#include "src/net/ipc_fabric.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"

namespace symphony {

IpcFabric::IpcFabric(Simulator* sim, const CostModel* cost, FaultPlan* faults,
                     TraceRecorder* trace, IpcFabricOptions options,
                     NetworkTopology* topology)
    : sim_(sim),
      cost_(cost),
      faults_(faults),
      trace_(trace),
      options_(options),
      topology_(topology) {
  assert(sim != nullptr);
  assert(cost != nullptr);
  if (topology_ == nullptr) {
    owned_topology_ = std::make_unique<NetworkTopology>(sim, cost, faults,
                                                        trace);
    topology_ = owned_topology_.get();
  }
}

void IpcFabric::AttachReplica(size_t index, LipRuntime* runtime) {
  if (index >= runtimes_.size()) {
    runtimes_.resize(index + 1, nullptr);
    dead_.resize(index + 1, false);
    fenced_.resize(index + 1, false);
    fence_epoch_.resize(index + 1, 0);
    replica_stats_.resize(index + 1);
  }
  runtimes_[index] = runtime;
}

void IpcFabric::FenceReplica(size_t index, uint64_t epoch) {
  if (index >= fenced_.size()) {
    assert(false && "FenceReplica on an unattached replica index");
    return;
  }
  fenced_[index] = true;
  fence_epoch_[index] = std::max(fence_epoch_[index], epoch);
  DropReplicaWaiters(index);
}

void IpcFabric::ReviveReplica(size_t index, LipRuntime* runtime) {
  if (index >= runtimes_.size()) {
    assert(false && "ReviveReplica on an unattached replica index");
    return;
  }
  runtimes_[index] = runtime;
  dead_[index] = false;
  fenced_[index] = false;
}

void IpcFabric::MarkReplicaDead(size_t index) {
  if (index >= dead_.size()) {
    // An unknown replica cannot hold waiters or bytes; marking it dead is a
    // caller bug (wrong index), and ignoring it would quietly leave the REAL
    // victim's waiters parked forever. Fail loudly.
    SYMPHONY_LOG(kError) << "MarkReplicaDead: replica " << index
                         << " was never attached (replica count "
                         << dead_.size() << ")";
    assert(false && "MarkReplicaDead on an unattached replica index");
    return;
  }
  dead_[index] = true;
  DropReplicaWaiters(index);
}

IpcFabric::Message* IpcFabric::FindMessage(ChannelState& ch, uint64_t msg_id) {
  for (Message& msg : ch.queue) {
    if (msg.id == msg_id) {
      return &msg;
    }
  }
  return nullptr;
}

IpcFabric::ChannelState& IpcFabric::Chan(const std::string& name) {
  auto [it, inserted] = channels_.try_emplace(name);
  if (inserted && options_.channel_credits > 0) {
    it->second.capacity = options_.channel_credits;
    it->second.credits = static_cast<int64_t>(options_.channel_credits);
  }
  return it->second;
}

bool IpcFabric::TrySend(size_t replica, LipId sender,
                        const std::string& channel, std::string* message) {
  (void)sender;  // Channel identity is receiver-side; senders stay anonymous.
  if (replica_fenced(replica)) {
    // A fenced incarnation's packets are dropped on the floor: report the
    // send handled (fire-and-forget, like a real network eating the frame)
    // so the zombie never parks, and count the rejection.
    ++stats_.fenced_rejections;
    message->clear();
    return true;
  }
  ChannelState& ch = Chan(channel);
  // FIFO among senders: a fresh send never overtakes parked ones, even when
  // a credit is momentarily free (DrainSenders will hand it to the head).
  if (ch.capacity > 0 && (ch.credits <= 0 || !ch.send_waiters.empty())) {
    return false;
  }
  Accept(replica, channel, ch, std::move(*message));
  return true;
}

void IpcFabric::Accept(size_t replica, const std::string& name,
                       ChannelState& ch, std::string bytes) {
  ++replica_stats_[replica].sent;
  if (ch.capacity > 0) {
    --ch.credits;  // The credit travels with the message until delivery/drop.
  }
  Message msg;
  msg.id = ch.next_send_id++;
  msg.origin = replica;
  msg.at = replica;
  msg.bytes = std::move(bytes);
  ch.queue.push_back(std::move(msg));
  ch.queue_peak = std::max(ch.queue_peak, ch.queue.size());
  // An unregistered channel parks the message at its origin; the first recv
  // homes the channel and routes everything queued.
  if (ch.registered) {
    IpcReplicaStats& home = replica_stats_[ch.home];
    home.queue_peak =
        std::max(home.queue_peak, static_cast<uint64_t>(ch.queue.size()));
    RouteMessage(name, ch, ch.queue.back());
    Drain(name, ch);
  }
}

void IpcFabric::AddSendWaiter(size_t replica, LipId sender,
                              const std::string& channel, ThreadId waiter,
                              std::string* slot, uint64_t resume_grant) {
  if (replica_fenced(replica)) {
    ++stats_.fenced_rejections;  // See AddWaiter: never park a zombie.
    return;
  }
  ChannelState& ch = Chan(channel);
  // A replayed thread's first re-park carries the grant ordinal after its
  // last journaled credit wait. Replay fast-forwards threads in dispatch
  // order, not original park order, so slot it back by grant ordinal among
  // its own LIP's hinted senders (live senders — grant 0 — are never
  // overtaken). Mirror of AddWaiter's resume_ordinal insertion.
  auto pos = ch.send_waiters.end();
  while (resume_grant > 0 && pos != ch.send_waiters.begin()) {
    auto prev = std::prev(pos);
    if (prev->replica != replica || prev->lip != sender ||
        prev->resume_grant <= resume_grant) {
      break;
    }
    pos = prev;
  }
  ch.send_waiters.insert(
      pos, SendWaiter{replica, sender, waiter, slot, resume_grant});
  ++stats_.credit_waits;
  ++replica_stats_[replica].credit_waits;
  if (trace_ != nullptr) {
    trace_->Instant("net", "credit-wait:" + channel, sim_->now());
  }
  // Self-healing: grant immediately if a credit freed between the failed
  // TrySend and the park (cannot happen in the single-threaded simulation,
  // but keeps the invariant local), then look for a credit-wait cycle.
  DrainSenders(channel, ch);
  CheckDeadlock(channel, ch);
}

void IpcFabric::Refund(const std::string& name, ChannelState& ch) {
  if (ch.capacity == 0) {
    return;
  }
  ++ch.credits;
  DrainSenders(name, ch);
}

void IpcFabric::DrainSenders(const std::string& name, ChannelState& ch) {
  if (ch.granting) {
    return;  // Re-entered via Accept -> Drain -> Refund: the outer loop
             // re-checks the refreshed credit balance and keeps granting.
  }
  ch.granting = true;
  // capacity 0 here means the channel just became unbounded with senders
  // still parked (SetChannelCredits): release them all.
  while ((ch.capacity == 0 || ch.credits > 0) && !ch.send_waiters.empty()) {
    SendWaiter waiter = ch.send_waiters.front();
    ch.send_waiters.pop_front();
    LipRuntime* runtime =
        waiter.replica < runtimes_.size() ? runtimes_[waiter.replica] : nullptr;
    if (runtime == nullptr) {
      continue;  // Unattached replica: discard the stale parked sender.
    }
    std::string bytes;
    if (!runtime->CompleteBlockedSend(waiter.thread, waiter.slot, name,
                                      ch.next_grant_ordinal, &bytes)) {
      continue;  // Dead sender: credit and grant ordinal stay unconsumed.
    }
    ++ch.next_grant_ordinal;
    ++stats_.credit_grants;
    Accept(waiter.replica, name, ch, std::move(bytes));
  }
  ch.granting = false;
}

void IpcFabric::CheckDeadlock(const std::string& name, ChannelState& origin) {
  if (!origin.registered || origin.deadlocked) {
    return;
  }
  // Endpoint wait-for graph: an edge (sender endpoint) -> (home endpoint)
  // for every parked sender — the sender cannot proceed until the channel's
  // receiver frees a credit. Conservative for multi-threaded LIPs (one
  // parked thread flags the whole endpoint), which is fine for a detector
  // that only surfaces state.
  using Node = std::pair<size_t, LipId>;
  std::map<Node, std::vector<Node>> fwd;
  std::map<Node, std::vector<Node>> rev;
  for (const auto& [n, ch] : channels_) {
    if (!ch.registered || ch.send_waiters.empty()) {
      continue;
    }
    Node home{ch.home, ch.receiver};
    for (const SendWaiter& w : ch.send_waiters) {
      Node from{w.replica, w.lip};
      fwd[from].push_back(home);
      rev[home].push_back(from);
    }
  }
  auto reach = [](const std::map<Node, std::vector<Node>>& edges, Node start) {
    std::set<Node> seen;
    std::vector<Node> stack{start};
    while (!stack.empty()) {
      Node node = stack.back();
      stack.pop_back();
      auto it = edges.find(node);
      if (it == edges.end()) {
        continue;
      }
      for (const Node& next : it->second) {
        if (seen.insert(next).second) {
          stack.push_back(next);
        }
      }
    }
    return seen;
  };
  for (const SendWaiter& w : origin.send_waiters) {
    Node start{w.replica, w.lip};
    std::set<Node> forward = reach(fwd, start);
    if (forward.count(start) == 0) {
      continue;  // No cycle through this sender.
    }
    // The cycle's node set is the SCC of `start`: nodes both reachable from
    // it and able to reach it. Flag every channel the cycle runs through.
    std::set<Node> backward = reach(rev, start);
    std::set<Node> scc;
    for (const Node& node : forward) {
      if (backward.count(node) > 0) {
        scc.insert(node);
      }
    }
    scc.insert(start);
    for (auto& [n, ch] : channels_) {
      if (!ch.registered || ch.deadlocked || ch.send_waiters.empty() ||
          scc.count(Node{ch.home, ch.receiver}) == 0) {
        continue;
      }
      bool parked_in_cycle = false;
      for (const SendWaiter& pw : ch.send_waiters) {
        if (scc.count(Node{pw.replica, pw.lip}) > 0) {
          parked_in_cycle = true;
          break;
        }
      }
      if (!parked_in_cycle) {
        continue;
      }
      ch.deadlocked = true;
      ch.last_error = DeadlockError("credit-wait cycle through channel '" +
                                    n + "'");
      ++stats_.credit_deadlocks;
      SYMPHONY_LOG(kWarning) << "ipc credit-wait deadlock on '" << n << "'";
      if (trace_ != nullptr) {
        trace_->Instant("net", "deadlock:" + n, sim_->now());
      }
    }
    return;  // One detection pass per park is enough.
  }
  (void)name;
}

bool IpcFabric::TryRecv(size_t replica, LipId receiver,
                        const std::string& channel, std::string* message,
                        uint64_t* ordinal) {
  if (replica_fenced(replica)) {
    // A fenced incarnation must not consume a message its replayed
    // successor is entitled to (that would break exactly-once delivery).
    ++stats_.fenced_rejections;
    return false;
  }
  ChannelState& ch = Chan(channel);
  Register(channel, ch, replica, receiver);
  // FIFO fairness: a fresh receiver never overtakes parked waiters.
  if (!ch.waiters.empty()) {
    return false;
  }
  if (ch.queue.empty() || !Deliverable(ch.queue.front())) {
    return false;
  }
  Message msg = std::move(ch.queue.front());
  ch.queue.pop_front();
  *message = std::move(msg.bytes);
  *ordinal = ch.next_recv_ordinal++;
  ++replica_stats_[replica].received;
  if (msg.origin == replica) {
    ++stats_.local_deliveries;
  }
  Refund(channel, ch);
  return true;
}

void IpcFabric::AddWaiter(size_t replica, LipId receiver,
                          const std::string& channel, ThreadId waiter,
                          std::string* slot, uint64_t resume_ordinal) {
  if (replica_fenced(replica)) {
    // Never park a zombie: its thread will not be resumed (the replica is
    // halted) and a parked fenced waiter would absorb a delivery.
    ++stats_.fenced_rejections;
    return;
  }
  ChannelState& ch = Chan(channel);
  Register(channel, ch, replica, receiver);
  // A replayed thread's first re-park carries the ordinal it was waiting for
  // when its endpoint died. Replay fast-forwards threads in dispatch order,
  // not original park order, so slot it back by ordinal among its own LIP's
  // hinted waiters (live waiters — ordinal 0 — are never overtaken).
  auto pos = ch.waiters.end();
  while (resume_ordinal > 0 && pos != ch.waiters.begin()) {
    auto prev = std::prev(pos);
    if (prev->replica != replica || prev->lip != receiver ||
        prev->resume_ordinal <= resume_ordinal) {
      break;
    }
    pos = prev;
  }
  ch.waiters.insert(pos, Waiter{replica, receiver, waiter, slot,
                                resume_ordinal});
  Drain(channel, ch);
}

void IpcFabric::DropWaiters(size_t replica, LipId lip) {
  for (auto& [name, ch] : channels_) {
    std::deque<Waiter> kept;
    for (const Waiter& w : ch.waiters) {
      if (w.replica == replica && w.lip == lip) {
        continue;
      }
      kept.push_back(w);
    }
    ch.waiters = std::move(kept);
    // Parked senders of the dead endpoint never consumed a credit (the
    // message is still in the killed frame's slot): scrub, nothing to
    // refund. A replayed incarnation re-runs the send and re-parks.
    std::deque<SendWaiter> kept_senders;
    for (const SendWaiter& w : ch.send_waiters) {
      if (w.replica == replica && w.lip == lip) {
        continue;
      }
      kept_senders.push_back(w);
    }
    ch.send_waiters = std::move(kept_senders);
  }
}

void IpcFabric::DropReplicaWaiters(size_t replica) {
  for (auto& [name, ch] : channels_) {
    std::deque<Waiter> kept;
    for (const Waiter& w : ch.waiters) {
      if (w.replica == replica) {
        continue;
      }
      kept.push_back(w);
    }
    ch.waiters = std::move(kept);
    std::deque<SendWaiter> kept_senders;
    for (const SendWaiter& w : ch.send_waiters) {
      if (w.replica == replica) {
        continue;
      }
      kept_senders.push_back(w);
    }
    ch.send_waiters = std::move(kept_senders);
  }
}

void IpcFabric::Register(const std::string& name, ChannelState& ch,
                         size_t replica, LipId lip) {
  if (ch.registered && ch.home == replica && ch.receiver == lip) {
    return;
  }
  bool rehome = ch.registered;
  ch.registered = true;
  ch.home = replica;
  ch.receiver = lip;
  if (rehome) {
    ++stats_.rehomes;
    if (trace_ != nullptr) {
      trace_->Instant("net", "rehome:" + name, sim_->now());
    }
  }
  // Re-route queued messages toward the (new) home. Ids first: a routed
  // message can be dropped (partition deadline), which erases from queue.
  std::vector<uint64_t> ids;
  for (const Message& msg : ch.queue) {
    if (!msg.in_flight) {
      ids.push_back(msg.id);
    }
  }
  for (uint64_t id : ids) {
    Message* msg = FindMessage(ch, id);
    if (msg == nullptr) {
      continue;
    }
    if (msg->at == replica) {
      MakeAvailable(name, ch, *msg);
      continue;
    }
    msg->available = false;
    if (rehome) {
      ++replica_stats_[msg->at].forwarded;
    }
    BeginTransfer(name, id);
  }
}

void IpcFabric::RehomeEndpoint(size_t old_replica, LipId old_lip,
                               size_t new_replica, LipId new_lip) {
  for (auto& [name, ch] : channels_) {
    if (!ch.registered || ch.home != old_replica || ch.receiver != old_lip) {
      continue;
    }
    ch.home = new_replica;
    ch.receiver = new_lip;
    ++stats_.rehomes;
    if (trace_ != nullptr) {
      trace_->Instant("net",
                      "rehome:" + name + ":replica" +
                          std::to_string(old_replica) + "->replica" +
                          std::to_string(new_replica),
                      sim_->now());
    }
    std::vector<uint64_t> ids;
    for (const Message& msg : ch.queue) {
      if (!msg.in_flight) {
        ids.push_back(msg.id);
      }
    }
    for (uint64_t id : ids) {
      Message* msg = FindMessage(ch, id);
      if (msg == nullptr) {
        continue;
      }
      if (msg->at == new_replica) {
        MakeAvailable(name, ch, *msg);
        continue;
      }
      msg->available = false;
      ++replica_stats_[msg->at].forwarded;
      BeginTransfer(name, id);
    }
    // In-flight messages arrive at the old home and forward from there
    // (Arrive sees the home mismatch).
    Drain(name, ch);
  }
}

void IpcFabric::RouteMessage(const std::string& name, ChannelState& ch,
                             Message& msg) {
  if (msg.at == ch.home) {
    MakeAvailable(name, ch, msg);
    return;
  }
  BeginTransfer(name, msg.id);
}

bool IpcFabric::Deliverable(const Message& msg) const {
  return msg.available && sim_->now() >= msg.ready_at;
}

void IpcFabric::MakeAvailable(const std::string& name, ChannelState& ch,
                              Message& msg) {
  msg.available = true;
  msg.ready_at = 0;
  if (faults_ == nullptr) {
    return;
  }
  SimDuration stall = faults_->OnIpcDeliver(ch.home, sim_->now());
  if (stall <= 0) {
    return;
  }
  msg.ready_at = sim_->now() + stall;
  if (trace_ != nullptr) {
    trace_->Instant("net", "slow-consumer:" + name, sim_->now());
  }
  uint64_t msg_id = msg.id;
  sim_->ScheduleAt(msg.ready_at, [this, name, msg_id] {
    ChannelState& chan = Chan(name);
    if (FindMessage(chan, msg_id) != nullptr) {
      Drain(name, chan);
    }
  });
}

SimDuration IpcFabric::RetryDelay(const std::string& name,
                                  const Message& msg) const {
  SimDuration base = options_.retry_base;
  for (uint32_t i = 1; i < msg.attempt && base < options_.retry_cap; ++i) {
    base *= 2;
  }
  base = std::min(base, options_.retry_cap);
  // One decision stream per (seed, channel, message, attempt) — the FaultPlan
  // keying discipline, so a replayed run re-draws identical backoffs.
  Rng rng(Mix64(options_.seed ^ Fnv1a(name)) ^
          Mix64(msg.id * 0x9e3779b97f4a7c15ULL + msg.attempt));
  double jitter =
      1.0 + options_.retry_jitter * (2.0 * rng.NextDouble() - 1.0);
  SimDuration delay =
      static_cast<SimDuration>(static_cast<double>(base) * jitter);
  return std::max<SimDuration>(delay, 1);
}

void IpcFabric::BeginTransfer(const std::string& name, uint64_t msg_id) {
  ChannelState& ch = Chan(name);
  Message* msg = FindMessage(ch, msg_id);
  if (msg == nullptr || msg->available || msg->in_flight || !ch.registered) {
    return;
  }
  size_t from = msg->at;
  size_t to = ch.home;
  if (from == to) {
    MakeAvailable(name, ch, *msg);
    Drain(name, ch);
    return;
  }
  SimTime now = sim_->now();
  bool partitioned = faults_ != nullptr && faults_->OnIpcTransmit(from, to, now);
  // A link-down window with no surviving route surfaces the same
  // retry/backoff/deadline semantics as a partition.
  bool unroutable = !partitioned && !topology_->Routable(from, to, now);
  if (partitioned || unroutable) {
    if (partitioned) {
      ++stats_.partition_retries;
    } else {
      ++stats_.link_down_retries;
    }
    if (msg->first_blocked < 0) {
      msg->first_blocked = now;
    }
    if (now - msg->first_blocked > options_.send_deadline) {
      DropMessage(name, ch, msg_id);
      return;
    }
    ++msg->attempt;
    msg->in_flight = true;  // The retry event owns the message until it fires.
    sim_->ScheduleAfter(RetryDelay(name, *msg), [this, name, msg_id] {
      ChannelState& chan = Chan(name);
      Message* m = FindMessage(chan, msg_id);
      if (m == nullptr) {
        return;
      }
      m->in_flight = false;
      if (m->available) {
        return;  // A rehome brought the home to the message meanwhile.
      }
      BeginTransfer(name, msg_id);
    });
    return;
  }
  msg->first_blocked = -1;
  msg->attempt = 0;
  ++stats_.cross_sends;
  stats_.cross_bytes += msg->bytes.size();
  SimTime arrival = topology_->Transfer(from, to, msg->bytes.size(), name);
  msg->in_flight = true;
  sim_->ScheduleAt(arrival,
                   [this, name, msg_id, to] { Arrive(name, msg_id, to); });
}

void IpcFabric::Arrive(const std::string& name, uint64_t msg_id, size_t at) {
  ChannelState& ch = Chan(name);
  Message* msg = FindMessage(ch, msg_id);
  if (msg == nullptr) {
    return;
  }
  msg->in_flight = false;
  msg->at = at;
  if (!ch.registered) {
    return;
  }
  if (at == ch.home) {
    MakeAvailable(name, ch, *msg);
    IpcReplicaStats& home = replica_stats_[ch.home];
    home.queue_peak =
        std::max(home.queue_peak, static_cast<uint64_t>(ch.queue.size()));
    Drain(name, ch);
    return;
  }
  // The endpoint moved while the bytes were on the wire: forward.
  ++replica_stats_[at].forwarded;
  BeginTransfer(name, msg_id);
}

void IpcFabric::Drain(const std::string& name, ChannelState& ch) {
  while (!ch.queue.empty() && Deliverable(ch.queue.front()) &&
         !ch.waiters.empty()) {
    Waiter waiter = ch.waiters.front();
    ch.waiters.pop_front();
    LipRuntime* runtime =
        waiter.replica < runtimes_.size() ? runtimes_[waiter.replica] : nullptr;
    if (runtime == nullptr) {
      continue;  // Unattached replica: discard the stale waiter.
    }
    Message& head = ch.queue.front();
    if (!runtime->DeliverToWaiter(waiter.thread, waiter.slot, name,
                                  ch.next_recv_ordinal, head.bytes)) {
      continue;  // Dead waiter: keep the message for the next one.
    }
    ++ch.next_recv_ordinal;
    ++replica_stats_[waiter.replica].received;
    if (head.origin == waiter.replica) {
      ++stats_.local_deliveries;
    }
    ch.queue.pop_front();
    Refund(name, ch);
  }
}

void IpcFabric::DropMessage(const std::string& name, ChannelState& ch,
                            uint64_t msg_id) {
  for (auto it = ch.queue.begin(); it != ch.queue.end(); ++it) {
    if (it->id != msg_id) {
      continue;
    }
    ++ch.dropped;
    ++replica_stats_[it->at].dropped;
    ch.last_error = UnavailableError("ipc message on '" + name +
                                     "' dropped: partitioned past the send "
                                     "deadline");
    SYMPHONY_LOG(kDebug) << "ipc drop on '" << name << "' (message "
                         << msg_id << ")";
    if (trace_ != nullptr) {
      trace_->Instant("net", "drop:" + name, sim_->now());
    }
    ch.queue.erase(it);
    Refund(name, ch);  // A dropped message must return its credit.
    break;
  }
  Drain(name, ch);  // The next head may already be available.
}

ChannelView IpcFabric::View(const std::string& channel) const {
  ChannelView view;
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    return view;
  }
  const ChannelState& ch = it->second;
  view.registered = ch.registered;
  view.home = ch.home;
  view.receiver = ch.receiver;
  view.queued = ch.queue.size();
  view.waiters = ch.waiters.size();
  view.dropped = ch.dropped;
  view.last_error = ch.last_error;
  view.capacity = ch.capacity;
  view.credits = ch.credits;
  view.send_waiters = ch.send_waiters.size();
  view.queue_peak = ch.queue_peak;
  view.deadlocked = ch.deadlocked;
  return view;
}

void IpcFabric::SetChannelCredits(const std::string& channel,
                                  uint64_t capacity) {
  ChannelState& ch = Chan(channel);
  ch.capacity = capacity;
  if (capacity == 0) {
    ch.credits = 0;
    DrainSenders(channel, ch);  // Unbounded now: release everyone parked.
    return;
  }
  ch.credits =
      static_cast<int64_t>(capacity) - static_cast<int64_t>(ch.queue.size());
  DrainSenders(channel, ch);
}

size_t IpcFabric::ParkedSenders(size_t replica) const {
  size_t parked = 0;
  for (const auto& [name, ch] : channels_) {
    for (const SendWaiter& w : ch.send_waiters) {
      if (w.replica == replica) {
        ++parked;
      }
    }
  }
  return parked;
}

SimDuration IpcFabric::BackpressureDelay(size_t replica) const {
  return static_cast<SimDuration>(ParkedSenders(replica)) *
         options_.backpressure_penalty;
}

}  // namespace symphony
