// IpcFabric: cluster-wide named channels (the paper's server-side IPC made
// multi-replica).
//
// The fabric is the cluster's channel router and registry. A channel's HOME
// is the (replica, LIP) endpoint that receives on it, registered on first
// recv and re-registered when the receiver moves (every live recv re-homes;
// SymphonyCluster additionally calls RehomeEndpoint when it replays an
// endpoint elsewhere, so messages already in flight are forwarded). Sends
// from any replica are accepted immediately — fire-and-forget, matching
// LipContext::send — and the message traverses a simulated Link (cost-model
// bandwidth/latency, "net" trace spans) when the home is remote. The fabric,
// not any one replica's runtime, owns every queue: messages survive replica
// death and are forwarded to a replayed endpoint's new home, which is what
// lets KillReplica/Migrate move ONE half of a communicating pair.
//
// Delivery is journaled by the receiving runtime at the recv syscall
// boundary (per-channel receive ordinals, JournalEntry::kRecv) and sends are
// journaled as JournalEntry::kSend; replay serves recvs verbatim and
// suppresses re-sends (see journal.h). The fabric itself is never rewound —
// a replayed endpoint simply stops consuming it until its journal runs dry.
//
// FIFO contract (property-tested): per channel, messages deliver in
// send-acceptance order (head-blocking — a queued later message never
// overtakes a head still in flight or retrying through a partition), and
// blocked receivers are served strictly first-come-first-served; a TryRecv
// never overtakes parked waiters. The contract survives replay: a replayed
// thread re-parks with its journal-recorded resume ordinal, which slots it
// back into the exact queue position it held among its LIP's waiters when
// the endpoint died — so multi-waiter fan-in stays bit-identical too.
//
// Partitions (src/faults): a transfer attempt blocked by a FaultPlan
// partition window retries with exponential backoff (deterministically
// jittered per (seed, channel, message, attempt)) and the message is dropped
// — kUnavailable recorded on the channel, visible via View()/stats, never
// thrown at the sender — only once it has been stuck past send_deadline.
#ifndef SRC_NET_IPC_FABRIC_H_
#define SRC_NET_IPC_FABRIC_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/faults/fault_plan.h"
#include "src/model/cost_model.h"
#include "src/net/link.h"
#include "src/runtime/runtime.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace symphony {

struct IpcFabricOptions {
  // How long a message may stay stuck behind a partition before it is
  // dropped (per message, measured from its first blocked attempt).
  SimDuration send_deadline = Millis(250);
  // Exponential backoff for blocked transfers: base * 2^(attempt-1), capped.
  SimDuration retry_base = Millis(1);
  SimDuration retry_cap = Millis(32);
  // Deterministic jitter: each retry delay is stretched by a factor drawn
  // uniformly from [1 - retry_jitter, 1 + retry_jitter].
  double retry_jitter = 0.2;
  uint64_t seed = 0x1Bc;
};

struct IpcReplicaStats {
  uint64_t sent = 0;       // Messages accepted from senders on this replica.
  uint64_t received = 0;   // Messages delivered to receivers on this replica.
  uint64_t forwarded = 0;  // Transfers re-kicked off this replica (rehoming).
  uint64_t dropped = 0;    // Messages dropped here (partition past deadline).
};

struct IpcFabricStats {
  uint64_t local_deliveries = 0;   // Origin and home on the same replica.
  uint64_t cross_sends = 0;        // Link transfers started.
  uint64_t partition_retries = 0;  // Transfer attempts blocked by a partition.
  uint64_t rehomes = 0;            // Channel endpoint re-registrations.
};

// Introspection snapshot of one channel (tests, bench reports).
struct ChannelView {
  bool registered = false;  // A receiver has homed the channel.
  size_t home = 0;
  LipId receiver = kNoLip;
  size_t queued = 0;   // Undelivered messages (any replica, incl. in flight).
  size_t waiters = 0;  // Parked receivers.
  uint64_t dropped = 0;
  Status last_error;   // kUnavailable after a partition-deadline drop.
};

class IpcFabric : public ChannelFabric {
 public:
  IpcFabric(Simulator* sim, const CostModel* cost, FaultPlan* faults,
            TraceRecorder* trace, IpcFabricOptions options = {});

  // ---- Cluster wiring ---------------------------------------------------

  // Registers replica `index`'s runtime (the fabric delivers into it and it
  // must have set_channel_fabric(this, index)). Call once per replica.
  void AttachReplica(size_t index, LipRuntime* runtime);

  // Replica failure: its parked waiters are scrubbed. Messages located there
  // stay queued — they are forwarded when their endpoint is rehomed.
  void MarkReplicaDead(size_t index);

  // Moves every channel homed at (old_replica, old_lip) to
  // (new_replica, new_lip) and forwards its queued messages to the new home
  // (the delta-migration retarget moment: SymphonyCluster::StartReplay).
  void RehomeEndpoint(size_t old_replica, LipId old_lip, size_t new_replica,
                      LipId new_lip);

  // ---- ChannelFabric (called by LipRuntime) -----------------------------

  void Send(size_t replica, LipId sender, const std::string& channel,
            std::string message) override;
  bool TryRecv(size_t replica, LipId receiver, const std::string& channel,
               std::string* message, uint64_t* ordinal) override;
  void AddWaiter(size_t replica, LipId receiver, const std::string& channel,
                 ThreadId waiter, std::string* slot,
                 uint64_t resume_ordinal) override;
  void DropWaiters(size_t replica, LipId lip) override;
  void DropReplicaWaiters(size_t replica) override;

  // ---- Introspection ----------------------------------------------------

  const IpcFabricStats& stats() const { return stats_; }
  const IpcReplicaStats& replica_stats(size_t index) const {
    return replica_stats_[index];
  }
  size_t replica_count() const { return runtimes_.size(); }
  ChannelView View(const std::string& channel) const;
  const std::map<std::pair<size_t, size_t>, std::unique_ptr<Link>>& links()
      const {
    return links_;
  }

 private:
  struct Message {
    uint64_t id = 0;         // Per-channel send-acceptance ordinal.
    size_t origin = 0;       // Sender replica.
    size_t at = 0;           // Replica the bytes currently sit on.
    bool in_flight = false;  // A transfer or retry event is pending.
    bool available = false;  // Arrived at the channel's current home.
    SimTime first_blocked = -1;  // First partition-blocked attempt (-1: none).
    uint32_t attempt = 0;        // Blocked-transfer retry count.
    std::string bytes;
  };
  struct Waiter {
    size_t replica = 0;
    LipId lip = kNoLip;
    ThreadId thread = 0;
    std::string* slot = nullptr;
    // Nonzero for a replayed thread's first re-park: the delivery ordinal it
    // is waiting for, used to slot it back into its original queue position.
    uint64_t resume_ordinal = 0;
  };
  struct ChannelState {
    bool registered = false;
    size_t home = 0;
    LipId receiver = kNoLip;
    std::deque<Message> queue;    // FIFO by send acceptance.
    std::deque<Waiter> waiters;   // FIFO by arrival.
    uint64_t next_send_id = 0;
    uint64_t next_recv_ordinal = 0;
    uint64_t dropped = 0;
    Status last_error;
  };

  // Registers/re-homes the channel endpoint and re-routes queued messages.
  void Register(const std::string& name, ChannelState& ch, size_t replica,
                LipId lip);
  // Routes one message toward the current home: marks it available (already
  // there) or starts a link transfer / partition retry.
  void RouteMessage(const std::string& name, ChannelState& ch, Message& msg);
  void BeginTransfer(const std::string& name, uint64_t msg_id);
  void Arrive(const std::string& name, uint64_t msg_id, size_t at);
  // Delivers available head messages to parked waiters, FIFO both sides.
  void Drain(const std::string& name, ChannelState& ch);
  void DropMessage(const std::string& name, ChannelState& ch, uint64_t msg_id);
  Link& LinkFor(size_t from, size_t to);
  Message* FindMessage(ChannelState& ch, uint64_t msg_id);
  SimDuration RetryDelay(const std::string& name, const Message& msg) const;

  Simulator* sim_;
  const CostModel* cost_;
  FaultPlan* faults_;  // Optional.
  TraceRecorder* trace_;  // Optional.
  IpcFabricOptions options_;
  std::vector<LipRuntime*> runtimes_;
  std::vector<bool> dead_;
  std::vector<IpcReplicaStats> replica_stats_;
  // std::map: deterministic iteration order for RehomeEndpoint.
  std::map<std::string, ChannelState> channels_;
  std::map<std::pair<size_t, size_t>, std::unique_ptr<Link>> links_;
  IpcFabricStats stats_;
};

}  // namespace symphony

#endif  // SRC_NET_IPC_FABRIC_H_
