// IpcFabric: cluster-wide named channels (the paper's server-side IPC made
// multi-replica).
//
// The fabric is the cluster's channel router and registry. A channel's HOME
// is the (replica, LIP) endpoint that receives on it, registered on first
// recv and re-registered when the receiver moves (every live recv re-homes;
// SymphonyCluster additionally calls RehomeEndpoint when it replays an
// endpoint elsewhere, so messages already in flight are forwarded). Sends
// from any replica are accepted immediately — fire-and-forget, matching
// LipContext::send — and the message is routed through the cluster's
// NetworkTopology (per-hop link serialization and latency, "net" trace
// spans) when the home is remote, contending for the same physical links as
// journal shipping and snapshot-store chunk fetches. The fabric,
// not any one replica's runtime, owns every queue: messages survive replica
// death and are forwarded to a replayed endpoint's new home, which is what
// lets KillReplica/Migrate move ONE half of a communicating pair.
//
// Delivery is journaled by the receiving runtime at the recv syscall
// boundary (per-channel receive ordinals, JournalEntry::kRecv) and sends are
// journaled as JournalEntry::kSend; replay serves recvs verbatim and
// suppresses re-sends (see journal.h). The fabric itself is never rewound —
// a replayed endpoint simply stops consuming it until its journal runs dry.
//
// FIFO contract (property-tested): per channel, messages deliver in
// send-acceptance order (head-blocking — a queued later message never
// overtakes a head still in flight or retrying through a partition), and
// blocked receivers are served strictly first-come-first-served; a TryRecv
// never overtakes parked waiters. The contract survives replay: a replayed
// thread re-parks with its journal-recorded resume ordinal, which slots it
// back into the exact queue position it held among its LIP's waiters when
// the endpoint died — so multi-waiter fan-in stays bit-identical too.
//
// Partitions (src/faults): a transfer attempt blocked by a FaultPlan
// partition window — or left with no live route by link-down windows
// (FaultPlan::AddLinkDown when the topology has no surviving path) — retries
// with exponential backoff (deterministically jittered per (seed, channel,
// message, attempt)) and the message is dropped — kUnavailable recorded on
// the channel, visible via View()/stats, never thrown at the sender — only
// once it has been stuck past send_deadline.
//
// Flow control (credit-based): a channel with capacity k holds a ledger of k
// credits. Accepting a send consumes one; the credit travels with the
// message (through transfers, forwarding, and rehoming — the ledger is
// fabric-global, so moving bytes between replicas conserves it) and is
// refunded when the message is delivered to a receiver or dropped at the
// partition deadline. With no credits left, TrySend refuses and the sender
// parks in a per-channel FIFO (the sender-side mirror of recv waiters); a
// freed credit grants the head parked sender via
// LipRuntime::CompleteBlockedSend, which journals a kCreditWait entry
// carrying the channel's grant ordinal immediately before the send's kSend
// entry — so replay consumes the pair without touching the fabric, and a
// sender killed while parked re-parks at its original FIFO position among
// its LIP's senders (resume_grant, same discipline as recv resume
// ordinals). Fabric queue depth therefore never exceeds k, and blocked-
// sender wakeup order is bit-identical under kill/migrate/replay of either
// endpoint. capacity 0 (the default) keeps the channel unbounded and send
// non-blocking, exactly as before.
//
// Deadlock detection: senders parked for credits can cycle (A full-sends to
// B while B full-sends to A). At each park the fabric walks the endpoint
// wait-for graph — edges (parked sender's endpoint) -> (channel's home
// endpoint) — and, on a cycle, surfaces kDeadlock on every participating
// channel (ChannelView::deadlocked + last_error) and counts it in stats.
// Detection-only and conservative (a multi-threaded LIP with one thread
// parked is flagged even if a sibling thread could still drain): the
// simulation terminates regardless because parked senders schedule no
// events, so surfacing beats unblocking.
//
// Slow-consumer windows (src/faults): FaultPlan::AddSlowConsumer holds every
// message that becomes deliverable at a replica inside the window for a
// configured stall before a recv may take it — the canonical way to fill a
// bounded channel and exercise backpressure in tests.
#ifndef SRC_NET_IPC_FABRIC_H_
#define SRC_NET_IPC_FABRIC_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/faults/fault_plan.h"
#include "src/model/cost_model.h"
#include "src/net/topology.h"
#include "src/runtime/runtime.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace symphony {

struct IpcFabricOptions {
  // How long a message may stay stuck behind a partition before it is
  // dropped (per message, measured from its first blocked attempt).
  SimDuration send_deadline = Millis(250);
  // Exponential backoff for blocked transfers: base * 2^(attempt-1), capped.
  SimDuration retry_base = Millis(1);
  SimDuration retry_cap = Millis(32);
  // Deterministic jitter: each retry delay is stretched by a factor drawn
  // uniformly from [1 - retry_jitter, 1 + retry_jitter].
  double retry_jitter = 0.2;
  uint64_t seed = 0x1Bc;
  // Credit capacity applied to every channel at creation; 0 = unbounded
  // (legacy behaviour: send never blocks). SetChannelCredits overrides per
  // channel.
  uint64_t channel_credits = 0;
  // Admission backpressure: each sender parked for a credit on a replica
  // inflates that replica's projected queue delay by this much (see
  // BackpressureDelay and SymphonyServer::set_backpressure_hook).
  SimDuration backpressure_penalty = Micros(50);
};

struct IpcReplicaStats {
  uint64_t sent = 0;       // Messages accepted from senders on this replica.
  uint64_t received = 0;   // Messages delivered to receivers on this replica.
  uint64_t forwarded = 0;  // Transfers re-kicked off this replica (rehoming).
  uint64_t dropped = 0;    // Messages dropped here (partition past deadline).
  uint64_t credit_waits = 0;  // Sends from this replica parked for a credit.
  uint64_t queue_peak = 0;    // Deepest queue among channels homed here.
};

struct IpcFabricStats {
  uint64_t local_deliveries = 0;   // Origin and home on the same replica.
  uint64_t cross_sends = 0;        // Topology transfers started.
  uint64_t cross_bytes = 0;        // Payload bytes handed to the topology.
  uint64_t partition_retries = 0;  // Transfer attempts blocked by a partition.
  uint64_t link_down_retries = 0;  // Transfer attempts with no live route.
  uint64_t rehomes = 0;            // Channel endpoint re-registrations.
  uint64_t credit_waits = 0;       // Senders parked for a credit.
  uint64_t credit_grants = 0;      // Parked senders granted a freed credit.
  uint64_t credit_deadlocks = 0;   // Channels flagged kDeadlock (once each).
  uint64_t fenced_rejections = 0;  // Sends/recvs refused from fenced replicas.
};

// Introspection snapshot of one channel (tests, bench reports).
struct ChannelView {
  bool registered = false;  // A receiver has homed the channel.
  size_t home = 0;
  LipId receiver = kNoLip;
  size_t queued = 0;   // Undelivered messages (any replica, incl. in flight).
  size_t waiters = 0;  // Parked receivers.
  uint64_t dropped = 0;
  Status last_error;   // kUnavailable after a partition-deadline drop;
                       // kDeadlock after a credit-wait cycle.
  // Flow control (capacity 0 = unbounded; credits/send_waiters then unused).
  uint64_t capacity = 0;
  int64_t credits = 0;      // Remaining; negative after a live cap reduction.
  size_t send_waiters = 0;  // Senders parked for a credit.
  size_t queue_peak = 0;    // High-watermark of queue depth (<= capacity).
  bool deadlocked = false;  // A credit-wait cycle goes through this channel.
};

class IpcFabric : public ChannelFabric {
 public:
  // `topology` routes every cross-replica transfer; nullptr makes the fabric
  // construct and own a default single-switch NetworkTopology (standalone
  // tests). SymphonyCluster passes its shared instance so IPC contends with
  // journal shipping and store fetches on the same links.
  IpcFabric(Simulator* sim, const CostModel* cost, FaultPlan* faults,
            TraceRecorder* trace, IpcFabricOptions options = {},
            NetworkTopology* topology = nullptr);

  // ---- Cluster wiring ---------------------------------------------------

  // Registers replica `index`'s runtime (the fabric delivers into it and it
  // must have set_channel_fabric(this, index)). Call once per replica.
  void AttachReplica(size_t index, LipRuntime* runtime);

  // Replica failure: its parked waiters are scrubbed. Messages located there
  // stay queued — they are forwarded when their endpoint is rehomed.
  void MarkReplicaDead(size_t index);

  // ---- Fencing (control plane, src/ctrl) --------------------------------

  // Fences replica `index` at generation `epoch`: until revived, sends from
  // it are discarded at the fabric boundary and recvs/parks from it are
  // refused (counted in stats().fenced_rejections). The runtime is halted by
  // the cluster before fencing, so these guards are the defense-in-depth
  // layer that makes a zombie incarnation provably unable to interact —
  // exactly-once ownership for replayed LIPs does not rest on the halt
  // alone.
  void FenceReplica(size_t index, uint64_t epoch);

  // Readmission: swaps in the rebuilt replica's runtime and clears the dead
  // and fence flags. The fence epoch is retained as the slot's generation
  // high-water mark (replica_fence_epoch).
  void ReviveReplica(size_t index, LipRuntime* runtime);

  bool replica_fenced(size_t index) const {
    return index < fenced_.size() && fenced_[index];
  }
  uint64_t replica_fence_epoch(size_t index) const {
    return index < fence_epoch_.size() ? fence_epoch_[index] : 0;
  }

  // Moves every channel homed at (old_replica, old_lip) to
  // (new_replica, new_lip) and forwards its queued messages to the new home
  // (the delta-migration retarget moment: SymphonyCluster::StartReplay).
  void RehomeEndpoint(size_t old_replica, LipId old_lip, size_t new_replica,
                      LipId new_lip);

  // ---- ChannelFabric (called by LipRuntime) -----------------------------

  bool TrySend(size_t replica, LipId sender, const std::string& channel,
               std::string* message) override;
  void AddSendWaiter(size_t replica, LipId sender, const std::string& channel,
                     ThreadId waiter, std::string* slot,
                     uint64_t resume_grant) override;
  bool TryRecv(size_t replica, LipId receiver, const std::string& channel,
               std::string* message, uint64_t* ordinal) override;
  void AddWaiter(size_t replica, LipId receiver, const std::string& channel,
                 ThreadId waiter, std::string* slot,
                 uint64_t resume_ordinal) override;
  void DropWaiters(size_t replica, LipId lip) override;
  void DropReplicaWaiters(size_t replica) override;

  // ---- Flow control -----------------------------------------------------

  // Per-channel capacity override (0 = unbounded). Applies to live channels:
  // the remaining credit balance becomes capacity - queued (negative when
  // shrinking below the current depth — existing messages are never dropped,
  // the channel just refuses new sends until it drains). A raise grants
  // parked senders immediately.
  void SetChannelCredits(const std::string& channel, uint64_t capacity);

  // Senders currently parked for a credit on channels, sending from
  // `replica`, and the admission-facing penalty derived from them
  // (parked * options.backpressure_penalty) — wired into
  // SymphonyServer::set_backpressure_hook by the cluster.
  size_t ParkedSenders(size_t replica) const;
  SimDuration BackpressureDelay(size_t replica) const;

  // ---- Introspection ----------------------------------------------------

  const IpcFabricStats& stats() const { return stats_; }
  const IpcReplicaStats& replica_stats(size_t index) const {
    return replica_stats_[index];
  }
  size_t replica_count() const { return runtimes_.size(); }
  ChannelView View(const std::string& channel) const;
  NetworkTopology& topology() { return *topology_; }
  const NetworkTopology& topology() const { return *topology_; }

 private:
  struct Message {
    uint64_t id = 0;         // Per-channel send-acceptance ordinal.
    size_t origin = 0;       // Sender replica.
    size_t at = 0;           // Replica the bytes currently sit on.
    bool in_flight = false;  // A transfer or retry event is pending.
    bool available = false;  // Arrived at the channel's current home.
    SimTime ready_at = 0;    // Deliverable no earlier than this (slow-consumer
                             // stall window; 0 = immediately once available).
    SimTime first_blocked = -1;  // First partition-blocked attempt (-1: none).
    uint32_t attempt = 0;        // Blocked-transfer retry count.
    std::string bytes;
  };
  struct Waiter {
    size_t replica = 0;
    LipId lip = kNoLip;
    ThreadId thread = 0;
    std::string* slot = nullptr;
    // Nonzero for a replayed thread's first re-park: the delivery ordinal it
    // is waiting for, used to slot it back into its original queue position.
    uint64_t resume_ordinal = 0;
  };
  struct SendWaiter {
    size_t replica = 0;
    LipId lip = kNoLip;
    ThreadId thread = 0;
    std::string* slot = nullptr;  // The parked message (awaitable frame).
    // Nonzero for a replayed thread's first re-park: the grant ordinal after
    // its last journaled credit wait (sender-FIFO position reconstruction).
    uint64_t resume_grant = 0;
  };
  struct ChannelState {
    bool registered = false;
    size_t home = 0;
    LipId receiver = kNoLip;
    std::deque<Message> queue;    // FIFO by send acceptance.
    std::deque<Waiter> waiters;   // FIFO by arrival.
    uint64_t next_send_id = 0;
    uint64_t next_recv_ordinal = 0;
    uint64_t dropped = 0;
    Status last_error;
    // Flow control (capacity 0 = unbounded).
    uint64_t capacity = 0;
    int64_t credits = 0;
    std::deque<SendWaiter> send_waiters;  // FIFO by park.
    uint64_t next_grant_ordinal = 0;
    size_t queue_peak = 0;
    bool deadlocked = false;
    bool granting = false;  // Re-entrancy guard for DrainSenders.
  };

  // Channel accessor that applies options_.channel_credits on creation.
  ChannelState& Chan(const std::string& name);
  // Consumes a credit, queues the message, and routes it. The single
  // acceptance point for both immediate and granted sends.
  void Accept(size_t replica, const std::string& name, ChannelState& ch,
              std::string bytes);
  // Returns one credit (delivery or drop) and grants parked senders.
  void Refund(const std::string& name, ChannelState& ch);
  // Grants freed credits to parked senders, FIFO, skipping dead ones.
  void DrainSenders(const std::string& name, ChannelState& ch);
  // Walks the endpoint wait-for graph from `ch`'s parked senders; on a
  // cycle, flags every participating channel kDeadlock.
  void CheckDeadlock(const std::string& name, ChannelState& ch);
  // Marks a message arrived at the home, applying any slow-consumer stall.
  void MakeAvailable(const std::string& name, ChannelState& ch, Message& msg);
  bool Deliverable(const Message& msg) const;
  // Registers/re-homes the channel endpoint and re-routes queued messages.
  void Register(const std::string& name, ChannelState& ch, size_t replica,
                LipId lip);
  // Routes one message toward the current home: marks it available (already
  // there) or starts a link transfer / partition retry.
  void RouteMessage(const std::string& name, ChannelState& ch, Message& msg);
  void BeginTransfer(const std::string& name, uint64_t msg_id);
  void Arrive(const std::string& name, uint64_t msg_id, size_t at);
  // Delivers available head messages to parked waiters, FIFO both sides.
  void Drain(const std::string& name, ChannelState& ch);
  void DropMessage(const std::string& name, ChannelState& ch, uint64_t msg_id);
  Message* FindMessage(ChannelState& ch, uint64_t msg_id);
  SimDuration RetryDelay(const std::string& name, const Message& msg) const;

  Simulator* sim_;
  const CostModel* cost_;
  FaultPlan* faults_;  // Optional.
  TraceRecorder* trace_;  // Optional.
  IpcFabricOptions options_;
  std::vector<LipRuntime*> runtimes_;
  std::vector<bool> dead_;
  std::vector<bool> fenced_;
  std::vector<uint64_t> fence_epoch_;
  std::vector<IpcReplicaStats> replica_stats_;
  // std::map: deterministic iteration order for RehomeEndpoint.
  std::map<std::string, ChannelState> channels_;
  std::unique_ptr<NetworkTopology> owned_topology_;  // When none was passed.
  NetworkTopology* topology_;
  IpcFabricStats stats_;
};

}  // namespace symphony

#endif  // SRC_NET_IPC_FABRIC_H_
