// NetworkTopology: the cluster's physical network graph, and the ONE place
// every cross-replica byte is charged.
//
// Nodes are replicas and switches; each directed physical link is a Link
// (link.h) with its own bandwidth, propagation latency, and busy_until
// serialization state. A transfer is routed over the shortest-latency path
// (precomputed, deterministic tie-breaks) and store-and-forwards per hop:
// hop N starts serializing once hop N-1 delivered, and every hop queues
// behind whatever else is on that wire. Congestion on a shared uplink is
// therefore real — a migration flood delays concurrent IPC across racks.
//
// All four cross-replica byte streams route through Transfer():
//   * IPC fabric sends and forwards     (IpcFabric::BeginTransfer)
//   * journal shipping for migration    (SymphonyCluster::ShipJournal)
//   * snapshot-store chunk fetches      (SnapshotStore::Fetch)
//   * prefix-sharing warm imports       (via SnapshotStore::Fetch)
// replacing the old split-brain accounting where only IPC serialized on
// links while everything else was charged CostModel::NetworkTime() with no
// queueing.
//
// Presets:
//   * kSingleSwitch (default) — an ideal non-blocking switch, modeled as a
//     dedicated directed link per replica pair with the uniform
//     HardwareConfig::interconnect_* parameters. This is bit-for-bit the
//     legacy per-pair link fabric: one hop, same serialization, same
//     latency, same trace spans. Grows lazily with the replica count.
//   * kTwoRack — replicas split across two rack switches joined by one
//     uplink (optionally plus a strictly-worse spine path for redundancy).
//     Intra-rack transfers take 2 hops (edge + edge); inter-rack take 3
//     (edge + uplink + edge) and contend for the shared uplink. With the
//     default per-hop parameters an intra-rack path's latency equals the
//     single-switch one-way latency (serialization repeats per
//     store-and-forward hop), and inter-rack adds the full uplink
//     serialization + latency on top.
//
// Fault injection: FaultPlan::AddLinkDown names two nodes; while the window
// covers a link on a transfer's static path, the transfer is rerouted over
// the shortest surviving path (stats().reroutes) or — when no path survives
// — Routable() reports false and the IPC fabric surfaces its partition
// retry/deadline semantics (stats().blocked).
//
// Determinism: routing is a pure function of (graph, fault plan, virtual
// time) — shortest paths break ties toward the lowest node id — and link
// reservation happens synchronously inside Transfer() in event order, so a
// seeded run routes and times every byte identically across reruns, which
// keeps kill/migrate/replay bit-identical.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/model/cost_model.h"
#include "src/net/link.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace symphony {

struct TopologyOptions {
  enum class Preset {
    kSingleSwitch,  // Ideal switch: direct per-pair links, uniform params.
    kTwoRack,       // Two rack switches joined by a shared uplink.
  };
  Preset preset = Preset::kSingleSwitch;
  // Replica count. kTwoRack builds its fixed graph from this at
  // construction; kSingleSwitch grows lazily and ignores it. SymphonyCluster
  // overwrites it with ClusterOptions::replicas.
  size_t replicas = 0;
  // kTwoRack: replicas [0, rack_split) sit under "rack0", the rest under
  // "rack1". 0 = split in half (first rack rounded up).
  size_t rack_split = 0;
  // Per-link parameter overrides. Bandwidth <= 0 / latency < 0 = derive from
  // HardwareConfig::interconnect_*: edges default to full bandwidth at HALF
  // the interconnect latency (edge + edge latency == the single-switch
  // one-way latency), the uplink to full bandwidth at the full latency.
  double edge_bandwidth = 0;        // Replica <-> rack switch.
  SimDuration edge_latency = -1;
  double uplink_bandwidth = 0;      // rack0 <-> rack1.
  SimDuration uplink_latency = -1;
  // kTwoRack redundancy: a spare path rack0 <-> spine <-> rack1, strictly
  // worse than the uplink by default (4x uplink latency per hop), used only
  // when a link-down window takes the primary uplink out.
  bool spine = false;
  double spine_bandwidth = 0;       // <= 0: uplink bandwidth.
  SimDuration spine_latency = -1;   // < 0: 4x uplink latency (per hop).
};

struct TopologyStats {
  uint64_t transfers = 0;          // End-to-end transfers routed.
  uint64_t payload_bytes = 0;      // Payload bytes (counted once, not per hop).
  uint64_t multi_hop_transfers = 0;  // Transfers whose path had > 1 link.
  uint64_t reroutes = 0;           // Static path down; surviving path used.
  uint64_t blocked = 0;            // Routable() == false answers.
};

// One row of per-link observability (ClusterSnapshot::net_links).
struct TopoLinkReport {
  std::string name;
  LinkStats stats;
};

class NetworkTopology {
 public:
  // `sim` and `cost` are required; `faults` and `trace` are optional.
  NetworkTopology(Simulator* sim, const CostModel* cost, FaultPlan* faults,
                  TraceRecorder* trace, TopologyOptions options = {});

  NetworkTopology(const NetworkTopology&) = delete;
  NetworkTopology& operator=(const NetworkTopology&) = delete;

  // Makes sure replica `index` exists as a node. kSingleSwitch grows the
  // mesh; fixed presets assert the index is within the built graph (runtime
  // growth on them goes through AddReplica).
  void EnsureReplica(size_t index);

  // Runtime elasticity: attaches one new replica and returns its index.
  // kSingleSwitch grows the mesh; kTwoRack hangs the new node off whichever
  // rack switch has fewer replicas (ties toward rack0) with the preset's
  // edge parameters. Existing routes are unaffected — the newcomer is a
  // leaf, so memoized static paths stay valid.
  size_t AddReplica();

  // True when at least one live path connects the replicas at `now`.
  // Counts a blocked transfer attempt when it answers false.
  bool Routable(size_t from, size_t to, SimTime now);

  // Routable without the stats/fault-plan accounting: the control plane's
  // heartbeat path consults this every beat, and a mere liveness check must
  // not inflate blocked-transfer counters.
  bool HasRoute(size_t from, size_t to, SimTime now);

  // Charges one end-to-end transfer of `bytes` starting now and returns its
  // absolute arrival time: each hop serializes on its link (queueing behind
  // earlier traffic) and pays that link's propagation latency, chained
  // store-and-forward. A zero-byte transfer still pays every hop's latency —
  // an empty packet is still a packet. The caller must have checked
  // Routable(); transferring across a fully severed cut falls back to the
  // static path (the bytes would sit at the cut in a real network; modeling
  // chooses the deterministic charge over dropping them silently).
  SimTime Transfer(size_t from, size_t to, uint64_t bytes,
                   const std::string& label);

  // All-links-up path latency between two replicas: the placement-affinity
  // metric (KillReplica/Rebalance prefer close survivors). Uniform on the
  // single-switch preset, so tie-breaks there never change placement.
  SimDuration Distance(size_t from, size_t to);

  size_t replica_count() const { return replica_count_; }
  size_t node_count() const { return names_.size(); }
  const std::string& node_name(size_t id) const { return names_[id]; }
  const TopologyOptions& options() const { return options_; }
  const TopologyStats& stats() const { return stats_; }
  // Every link that carried traffic, in deterministic (from, to) order.
  std::vector<TopoLinkReport> LinkReport() const;

 private:
  struct Edge {
    size_t to = 0;
    double bandwidth = 0;
    SimDuration latency = 0;
  };

  void AddBidirectionalEdge(size_t a, size_t b, double bandwidth,
                            SimDuration latency);
  // Node id of a replica index. Identity on the mesh; on switch presets a
  // replica added after construction gets a node id past the switches, so
  // every public entry point translates through this.
  size_t NodeOf(size_t replica) const;
  Link& LinkFor(size_t from, size_t to);
  bool LinkUp(size_t a, size_t b, SimTime now) const;
  const Edge* EdgeBetween(size_t from, size_t to) const;
  // Shortest-latency path as a node sequence; empty when unreachable.
  // respect_down excludes links inside a FaultPlan down window at `now`.
  std::vector<size_t> Shortest(size_t from, size_t to, SimTime now,
                               bool respect_down) const;
  // The all-up static route, memoized.
  const std::vector<size_t>& StaticPath(size_t from, size_t to);
  // Route honoring down windows; sets *rerouted when it deviates from the
  // static path. Empty when no live path exists.
  std::vector<size_t> PathFor(size_t from, size_t to, SimTime now,
                              bool* rerouted);

  Simulator* sim_;
  const CostModel* cost_;
  FaultPlan* faults_;      // Optional.
  TraceRecorder* trace_;   // Optional.
  TopologyOptions options_;
  size_t replica_count_ = 0;
  std::vector<size_t> replica_node_;     // Replica index -> node id.
  // kTwoRack growth state: rack switch node ids, per-rack replica counts,
  // and the edge parameters new members attach with.
  size_t rack0_node_ = SIZE_MAX;
  size_t rack1_node_ = SIZE_MAX;
  size_t rack_members_[2] = {0, 0};
  double edge_bw_ = 0;
  SimDuration edge_lat_ = 0;
  std::vector<std::string> names_;       // Node id -> name.
  std::vector<std::vector<Edge>> adj_;   // Switch presets; empty for mesh.
  // std::map: deterministic LinkReport order.
  std::map<std::pair<size_t, size_t>, std::unique_ptr<Link>> links_;
  std::map<std::pair<size_t, size_t>, std::vector<size_t>> static_paths_;
  TopologyStats stats_;
};

}  // namespace symphony

#endif  // SRC_NET_TOPOLOGY_H_
