// The batch inference scheduler: the second level of §4.4's scheme.
//
// Aggregates pred system calls from all LIP threads into GPU batches. On
// launch it validates each request (handle rights, strict position
// continuation), restores KV residency (charging PCIe traffic), and sizes the
// work; at batch completion it re-validates, materializes new TokenRecords
// into the KV files, and delivers next-token distributions to the blocked
// threads. Batch timing is delegated to a pluggable BatchPolicy.
#ifndef SRC_SCHED_INFERENCE_SCHEDULER_H_
#define SRC_SCHED_INFERENCE_SCHEDULER_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/gpu/device.h"
#include "src/kvfs/kvfs.h"
#include "src/model/model.h"
#include "src/runtime/pred_service.h"
#include "src/sched/batch_policy.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace symphony {

// How queued pred requests are picked into a batch.
enum class QueueDiscipline {
  kFifo,       // Strict arrival order.
  kFairShare,  // Round-robin across LIPs: a LIP flooding the queue cannot
               // starve others (paper §6, multi-tenant fairness).
};

struct InferenceSchedulerOptions {
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  size_t max_batch_requests = 32;
  // Cap on total new tokens per batch so giant prefills don't head-of-line
  // block an entire round.
  uint64_t max_batch_tokens = 16384;
  // EWMA smoothing for the arrival-rate estimate.
  double rate_ewma_alpha = 0.2;
  // Pause after a batch completes before launching the next one, so threads
  // woken by the completed batch can resubmit and join it. Without this the
  // client population splits into two alternating half-sized batches.
  SimDuration formation_delay = Micros(100);
  // Preemption-style handling of device-memory exhaustion: a request whose
  // KV cannot be restored/appended is requeued after a backoff instead of
  // failing, up to this many attempts. Memory freed by completing or
  // offloaded LIPs lets it proceed later. The backoff doubles per attempt
  // (base, 2x, 4x, ...) up to the cap, so a brief pressure spike retries
  // promptly while sustained pressure is probed at the cap rate.
  uint32_t max_memory_retries = 500;
  SimDuration memory_retry_backoff = Millis(20);
  SimDuration memory_retry_backoff_cap = Millis(320);
};

struct InferenceSchedulerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t batches = 0;
  uint64_t memory_requeues = 0;
  // Maximum memory_retries seen on any single request (backoff depth).
  uint32_t max_memory_retry_depth = 0;
  // Requests cancelled by CancelLip (deadline expiry).
  uint64_t cancelled = 0;
  // Context tokens already present in KV files when preds were batched (the
  // file's length at submit). Warm prefixes — forked, restored, or imported
  // from the cluster snapshot store — show up here as compute not re-done.
  uint64_t prefix_reuse_tokens = 0;
};

class InferenceScheduler : public PredService {
 public:
  InferenceScheduler(Simulator* sim, Kvfs* kvfs, const Model* model,
                     Device* device, std::unique_ptr<BatchPolicy> policy,
                     InferenceSchedulerOptions options = {});

  void Submit(PredRequest request) override;

  // Deadline expiry: completes every queued and retry-pending request of
  // `lip` with kDeadlineExceeded. A later Submit from the same lip (journal
  // replay re-execution) clears the cancellation.
  void CancelLip(LipId lip) override;

  const InferenceSchedulerStats& stats() const { return stats_; }
  const SampleSeries& queue_waits_ms() const { return queue_waits_ms_; }
  double arrival_rate_per_sec() const { return rate_per_sec_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  void MaybeLaunch();
  void LaunchBatch();
  size_t PickNext(const std::unordered_map<LipId, uint32_t>& taken) const;
  void CompleteRequest(PredRequest& request);
  // Requeues a memory-starved request after a backoff; returns false (and
  // fails the request) once the retry budget is exhausted.
  bool RequeueForMemory(PredRequest& request, const Status& why);
  // Validates rights + continuation; returns the context length on success.
  StatusOr<uint64_t> Validate(const PredRequest& request);

  Simulator* sim_;
  Kvfs* kvfs_;
  const Model* model_;
  Device* device_;
  std::unique_ptr<BatchPolicy> policy_;
  InferenceSchedulerOptions options_;

  std::deque<PredRequest> queue_;
  // LIPs cancelled by CancelLip whose in-flight memory-retry events must
  // complete with an error instead of requeueing.
  std::unordered_set<LipId> cancelled_lips_;
  Simulator::EventId recheck_event_ = 0;
  SimTime next_launch_time_ = 0;
  SimTime last_submit_ = 0;
  double rate_per_sec_ = 0.0;
  InferenceSchedulerStats stats_;
  SampleSeries queue_waits_ms_;
};

}  // namespace symphony

#endif  // SRC_SCHED_INFERENCE_SCHEDULER_H_
