// The batch inference scheduler: the second level of §4.4's scheme.
//
// Aggregates pred system calls from all LIP threads into GPU batches. On
// launch it validates each request (handle rights, strict position
// continuation), restores KV residency (charging PCIe traffic), and sizes the
// work; at batch completion it re-validates, materializes new TokenRecords
// into the KV files, and delivers next-token distributions to the blocked
// threads. Batch timing is delegated to a pluggable BatchPolicy.
#ifndef SRC_SCHED_INFERENCE_SCHEDULER_H_
#define SRC_SCHED_INFERENCE_SCHEDULER_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/gpu/device.h"
#include "src/kvfs/kvfs.h"
#include "src/model/model.h"
#include "src/runtime/pred_service.h"
#include "src/sched/batch_policy.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace symphony {

// How queued pred requests are picked into a batch.
enum class QueueDiscipline {
  kFifo,       // Strict arrival order.
  kFairShare,  // Round-robin across LIPs: a LIP flooding the queue cannot
               // starve others (paper §6, multi-tenant fairness).
};

struct InferenceSchedulerOptions {
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  size_t max_batch_requests = 32;
  // Cap on total new tokens per batch so giant prefills don't head-of-line
  // block an entire round.
  uint64_t max_batch_tokens = 16384;
  // EWMA smoothing for the arrival-rate estimate.
  double rate_ewma_alpha = 0.2;
  // Pause after a batch completes before launching the next one, so threads
  // woken by the completed batch can resubmit and join it. Without this the
  // client population splits into two alternating half-sized batches.
  SimDuration formation_delay = Micros(100);
  // Preemption-style handling of device-memory exhaustion: a request whose
  // KV cannot be restored/appended is requeued after a backoff instead of
  // failing, up to this many attempts. Memory freed by completing or
  // offloaded LIPs lets it proceed later. The backoff doubles per attempt
  // (base, 2x, 4x, ...) up to the cap, so a brief pressure spike retries
  // promptly while sustained pressure is probed at the cap rate.
  uint32_t max_memory_retries = 500;
  SimDuration memory_retry_backoff = Millis(20);
  SimDuration memory_retry_backoff_cap = Millis(320);
  // --- Stall-free scheduling ---
  // When > 0, a pred with more new tokens than this executes as
  // position-contiguous chunks of at most this size: only the next chunk
  // joins a batch, and the remainder is re-queued as a continuation carrying
  // the original submit time, LIP identity, and validation context. Chunking
  // is semantically invisible — distributions and KV state are bit-identical
  // to unchunked execution (the model advances token-sequentially either
  // way) — it only bounds how long a single batch can run, so a 3000-token
  // prefill can no longer stall every 1-token decode in its round.
  // 0 disables chunking.
  uint64_t prefill_chunk_tokens = 0;
  // Decode-priority packing: fill each batch with every pending decode-sized
  // request first, then top up with at most ONE prefill chunk, so per-batch
  // time is bounded by the decode load plus the chunk budget. Pair with
  // prefill_chunk_tokens > 0 to actually bound the prefill contribution.
  bool decode_priority = false;
  // A request with at most this many new tokens counts as a decode for
  // decode-priority packing and token-occupancy stats; continuations of a
  // split prefill always count as prefill regardless of their tail size.
  uint64_t decode_classify_tokens = 8;
};

struct InferenceSchedulerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t batches = 0;
  uint64_t memory_requeues = 0;
  // Maximum memory_retries seen on any single request (backoff depth).
  uint32_t max_memory_retry_depth = 0;
  // Requests cancelled by CancelLip (deadline expiry).
  uint64_t cancelled = 0;
  // Context tokens already present in KV files when preds were batched (the
  // file's length at submit). Warm prefixes — forked, restored, or imported
  // from the cluster snapshot store — show up here as compute not re-done.
  // Tokens a chunked prefill wrote itself in earlier chunks are excluded.
  uint64_t prefix_reuse_tokens = 0;
  // --- Per-batch token occupancy (stall-free scheduling observability) ---
  // New tokens batched from decode-sized requests vs prefill-sized ones.
  uint64_t decode_tokens_batched = 0;
  uint64_t prefill_tokens_batched = 0;
  // Chunk launches belonging to a split prefill (each batch entry of a
  // split counts once, including the final chunk).
  uint64_t prefill_chunks = 0;
  // Distinct prefills that were split into chunks at least once.
  uint64_t prefills_chunked = 0;
};

class InferenceScheduler : public PredService {
 public:
  InferenceScheduler(Simulator* sim, Kvfs* kvfs, const Model* model,
                     Device* device, std::unique_ptr<BatchPolicy> policy,
                     InferenceSchedulerOptions options = {});

  void Submit(PredRequest request) override;

  // Deadline expiry: completes every queued and retry-pending request of
  // `lip` with kDeadlineExceeded. A later Submit from the same lip (journal
  // replay re-execution) clears the cancellation.
  void CancelLip(LipId lip) override;

  const InferenceSchedulerStats& stats() const { return stats_; }
  const SampleSeries& queue_waits_ms() const { return queue_waits_ms_; }
  double arrival_rate_per_sec() const { return rate_per_sec_; }
  size_t queue_depth() const { return queue_.size(); }

  // Fired right after a prefill-sized pred (more than decode_classify_tokens
  // new tokens, counting every chunk of a split) completes successfully, with
  // the LIP and the KV file length after the append. Prefill-role cluster
  // replicas use it to hand freshly prefilled LIPs to a decode replica.
  void set_prefill_complete_hook(std::function<void(LipId, uint64_t)> hook) {
    prefill_complete_hook_ = std::move(hook);
  }

 private:
  static constexpr size_t kNoPick = static_cast<size_t>(-1);

  void MaybeLaunch();
  void LaunchBatch();
  // Picks the next un-picked request index under the active discipline
  // (kFifo: first; kFairShare: oldest among LIPs with fewest picks this
  // batch), optionally restricted to decode-sized requests. kNoPick if none.
  size_t PickNext(const std::unordered_map<LipId, uint32_t>& taken,
                  const std::vector<char>& picked, bool decode_only) const;
  // Simulates LaunchBatch's pick loop without side effects so the policy's
  // est_batch_time describes the batch that would actually launch (pick
  // order, decode-priority packing, and chunk caps included).
  std::vector<WorkItem> ProspectiveItems() const;
  bool IsDecode(const PredRequest& request) const;
  // New tokens this request would contribute to the next batch (its chunk).
  uint64_t ChunkTake(const PredRequest& request) const;
  // Samples the queue wait for the original request (not for continuations
  // of an already-launched chunked prefill).
  void RecordQueueWait(const PredRequest& request);
  // Materializes the first `take` tokens of the request; when take is short
  // of the full request (a prefill chunk), re-queues the remainder as a
  // continuation instead of completing.
  void CompleteRequest(PredRequest& request, uint64_t take);
  // Requeues a memory-starved request after a backoff; returns false (and
  // fails the request) once the retry budget is exhausted.
  bool RequeueForMemory(PredRequest& request, const Status& why);
  // Validates rights + continuation; returns the context length on success.
  StatusOr<uint64_t> Validate(const PredRequest& request);

  Simulator* sim_;
  Kvfs* kvfs_;
  const Model* model_;
  Device* device_;
  std::unique_ptr<BatchPolicy> policy_;
  InferenceSchedulerOptions options_;

  std::deque<PredRequest> queue_;
  // LIPs cancelled by CancelLip whose in-flight memory-retry events must
  // complete with an error instead of requeueing.
  std::unordered_set<LipId> cancelled_lips_;
  Simulator::EventId recheck_event_ = 0;
  SimTime next_launch_time_ = 0;
  SimTime last_submit_ = 0;
  double rate_per_sec_ = 0.0;
  InferenceSchedulerStats stats_;
  SampleSeries queue_waits_ms_;
  std::function<void(LipId, uint64_t)> prefill_complete_hook_;
};

}  // namespace symphony

#endif  // SRC_SCHED_INFERENCE_SCHEDULER_H_
