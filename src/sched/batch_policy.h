// Batch-trigger policies for the inference scheduler (paper §4.4).
//
// The core timing question of the two-level scheduler: with the device idle
// and N pred calls queued, launch now (lower latency, smaller batch) or wait
// for more arrivals (better GPU efficiency)? The paper proposes adapting the
// batch size to the observed system-call frequency using a Poisson model;
// PoissonAdaptivePolicy implements that, with Eager and SizeTimeout as the
// classic alternatives (and ablation baselines).
#ifndef SRC_SCHED_BATCH_POLICY_H_
#define SRC_SCHED_BATCH_POLICY_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>

#include "src/sim/time.h"

namespace symphony {

// Inputs available to a policy when the device is idle and work is queued.
struct BatchPolicyInput {
  size_t queue_size = 0;
  SimDuration oldest_wait = 0;        // Age of the oldest queued request.
  double arrival_rate_per_sec = 0.0;  // EWMA estimate of pred arrivals.
  SimDuration est_batch_time = 0;     // Predicted execution time of the queue.
  size_t max_batch = 0;
};

struct BatchDecision {
  bool launch = false;
  // When not launching: re-evaluate after this long (must be > 0).
  SimDuration recheck_after = 0;
};

class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;
  virtual BatchDecision ShouldLaunch(const BatchPolicyInput& input) = 0;
  virtual const char* name() const = 0;
};

// Launch whenever there is work (continuous batching).
class EagerPolicy : public BatchPolicy {
 public:
  BatchDecision ShouldLaunch(const BatchPolicyInput&) override {
    return BatchDecision{true, 0};
  }
  const char* name() const override { return "eager"; }
};

// Launch at a fixed batch size, or when the oldest request exceeds a timeout.
class SizeTimeoutPolicy : public BatchPolicy {
 public:
  SizeTimeoutPolicy(size_t target_size, SimDuration timeout)
      : target_size_(target_size), timeout_(timeout) {}

  BatchDecision ShouldLaunch(const BatchPolicyInput& input) override {
    if (input.queue_size >= std::min(target_size_, input.max_batch) ||
        input.oldest_wait >= timeout_) {
      return BatchDecision{true, 0};
    }
    return BatchDecision{false, std::max<SimDuration>(timeout_ - input.oldest_wait,
                                                      Micros(50))};
  }
  const char* name() const override { return "size-timeout"; }

 private:
  size_t target_size_;
  SimDuration timeout_;
};

// Poisson-adaptive: target the batch size that arrivals can sustain during
// one batch execution. With arrival rate lambda and estimated execution time
// T, about lambda*T requests arrive while a batch runs; queueing deeper than
// that buys no extra efficiency at steady state, while launching much
// shallower wastes the weight pass. Waits are capped by max_wait.
class PoissonAdaptivePolicy : public BatchPolicy {
 public:
  explicit PoissonAdaptivePolicy(SimDuration max_wait = Millis(20))
      : max_wait_(max_wait) {}

  BatchDecision ShouldLaunch(const BatchPolicyInput& input) override {
    if (input.oldest_wait >= max_wait_) {
      return BatchDecision{true, 0};
    }
    double expected_arrivals =
        input.arrival_rate_per_sec * ToSeconds(input.est_batch_time);
    size_t target = static_cast<size_t>(std::ceil(expected_arrivals));
    target = std::clamp<size_t>(target, 1, input.max_batch);
    if (input.queue_size >= target) {
      return BatchDecision{true, 0};
    }
    // Wait for roughly the gap to the next arrival, bounded by the remaining
    // latency budget.
    SimDuration gap = input.arrival_rate_per_sec > 0.0
                          ? DurationFromSeconds(1.0 / input.arrival_rate_per_sec)
                          : max_wait_;
    SimDuration budget = max_wait_ - input.oldest_wait;
    return BatchDecision{false, std::clamp<SimDuration>(gap, Micros(50), budget)};
  }
  const char* name() const override { return "poisson-adaptive"; }

 private:
  SimDuration max_wait_;
};

}  // namespace symphony

#endif  // SRC_SCHED_BATCH_POLICY_H_
