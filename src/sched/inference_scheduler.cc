#include "src/sched/inference_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <iterator>
#include <memory>
#include <utility>

#include "src/common/logging.h"

namespace symphony {

InferenceScheduler::InferenceScheduler(Simulator* sim, Kvfs* kvfs,
                                       const Model* model, Device* device,
                                       std::unique_ptr<BatchPolicy> policy,
                                       InferenceSchedulerOptions options)
    : sim_(sim),
      kvfs_(kvfs),
      model_(model),
      device_(device),
      policy_(std::move(policy)),
      options_(options) {
  assert(policy_ != nullptr);
}

StatusOr<uint64_t> InferenceScheduler::Validate(const PredRequest& request) {
  SYMPHONY_ASSIGN_OR_RETURN(uint64_t length, kvfs_->Length(request.kv));
  for (size_t i = 0; i < request.positions.size(); ++i) {
    int64_t expected = static_cast<int64_t>(length) + static_cast<int64_t>(i);
    if (request.positions[i] != expected) {
      return InvalidArgumentError(
          "pred positions must continue the kv file (expected " +
          std::to_string(expected) + ", got " +
          std::to_string(request.positions[i]) + ")");
    }
  }
  return length;
}

void InferenceScheduler::Submit(PredRequest request) {
  ++stats_.submitted;
  // A fresh submit supersedes any earlier cancellation of this LIP (journal
  // replay re-executes a recovered LIP through the live scheduler).
  cancelled_lips_.erase(request.lip);
  SimTime now = sim_->now();
  if (last_submit_ > 0) {
    double gap_s = std::max(ToSeconds(now - last_submit_), 1e-6);
    double inst_rate = 1.0 / gap_s;
    rate_per_sec_ = rate_per_sec_ == 0.0
                        ? inst_rate
                        : (1.0 - options_.rate_ewma_alpha) * rate_per_sec_ +
                              options_.rate_ewma_alpha * inst_rate;
  }
  last_submit_ = now;
  queue_.push_back(std::move(request));
  MaybeLaunch();
}

void InferenceScheduler::MaybeLaunch() {
  if (recheck_event_ != 0) {
    sim_->Cancel(recheck_event_);
    recheck_event_ = 0;
  }
  if (device_->busy() || queue_.empty()) {
    return;
  }
  if (sim_->now() < next_launch_time_) {
    // Batch-formation window after a completion: wait for just-woken threads
    // to resubmit before launching.
    recheck_event_ = sim_->ScheduleAt(next_launch_time_, [this] {
      recheck_event_ = 0;
      MaybeLaunch();
    });
    return;
  }

  // Build the prospective batch profile for the policy in the same order
  // LaunchBatch would pick (discipline, decode priority, chunk caps), so
  // est_batch_time describes the batch that actually launches.
  std::vector<WorkItem> items = ProspectiveItems();

  BatchPolicyInput input;
  input.queue_size = queue_.size();
  input.oldest_wait = sim_->now() - queue_.front().submit_time;
  input.arrival_rate_per_sec = rate_per_sec_;
  input.est_batch_time = device_->EstimateTime(items, 0);
  input.max_batch = options_.max_batch_requests;

  BatchDecision decision = policy_->ShouldLaunch(input);
  if (decision.launch) {
    LaunchBatch();
    return;
  }
  SimDuration delay = std::max<SimDuration>(decision.recheck_after, Micros(10));
  recheck_event_ = sim_->ScheduleAfter(delay, [this] {
    recheck_event_ = 0;
    MaybeLaunch();
  });
}

// Picks the next un-picked request index under the active discipline: FIFO
// takes arrival order; fair share takes the oldest request among LIPs with
// the fewest picks so far this batch. A continuation of a chunked prefill
// carries its original LIP, so a split prefill still costs its LIP exactly
// one fair-share turn per batch.
size_t InferenceScheduler::PickNext(
    const std::unordered_map<LipId, uint32_t>& taken,
    const std::vector<char>& picked, bool decode_only) const {
  size_t best = kNoPick;
  uint32_t best_count = UINT32_MAX;
  for (size_t i = 0; i < picked.size(); ++i) {
    if (picked[i] != 0 || (decode_only && !IsDecode(queue_[i]))) {
      continue;
    }
    if (options_.discipline == QueueDiscipline::kFifo) {
      return i;
    }
    auto it = taken.find(queue_[i].lip);
    uint32_t count = it == taken.end() ? 0 : it->second;
    if (count < best_count) {
      best = i;
      best_count = count;
      if (count == 0) {
        break;  // Arrival order among zero-count LIPs.
      }
    }
  }
  return best;
}

bool InferenceScheduler::IsDecode(const PredRequest& request) const {
  return request.chunk_done == 0 &&
         request.tokens.size() <= options_.decode_classify_tokens;
}

uint64_t InferenceScheduler::ChunkTake(const PredRequest& request) const {
  uint64_t take = request.tokens.size();
  if (options_.prefill_chunk_tokens > 0 &&
      take > options_.prefill_chunk_tokens) {
    take = options_.prefill_chunk_tokens;
  }
  return take;
}

void InferenceScheduler::RecordQueueWait(const PredRequest& request) {
  // Continuations of an already-launched chunked prefill keep the original
  // submit_time; only the original request samples the wait.
  if (request.chunk_done == 0) {
    queue_waits_ms_.Add(ToMillis(sim_->now() - request.submit_time));
  }
}

std::vector<WorkItem> InferenceScheduler::ProspectiveItems() const {
  std::vector<WorkItem> items;
  items.reserve(std::min(queue_.size(), options_.max_batch_requests));
  uint64_t total_tokens = 0;
  std::unordered_map<LipId, uint32_t> taken;
  std::vector<char> picked(queue_.size(), 0);
  size_t left = queue_.size();
  bool decode_phase = options_.decode_priority;
  while (left > 0 && items.size() < options_.max_batch_requests &&
         total_tokens < options_.max_batch_tokens) {
    size_t pick = PickNext(taken, picked, decode_phase);
    if (pick == kNoPick) {
      if (decode_phase) {
        decode_phase = false;  // Decodes exhausted; top up with one prefill.
        continue;
      }
      break;
    }
    picked[pick] = 1;
    --left;
    const PredRequest& request = queue_[pick];
    ++taken[request.lip];
    uint64_t take = ChunkTake(request);
    StatusOr<uint64_t> length = kvfs_->Length(request.kv);
    items.push_back(WorkItem{take, length.ok() ? *length : 0});
    total_tokens += take;
    if (!decode_phase && options_.decode_priority) {
      break;  // Decode-priority batches carry at most one prefill chunk.
    }
  }
  return items;
}

void InferenceScheduler::LaunchBatch() {
  struct BatchEntry {
    PredRequest request;
    uint64_t take;  // New tokens of this request executed by this batch.
  };
  auto batch = std::make_shared<std::vector<BatchEntry>>();
  std::vector<WorkItem> items;
  uint64_t total_tokens = 0;
  std::unordered_map<LipId, uint32_t> taken;
  // Picked slots are masked and compacted after the loop (completion
  // callbacks never reenter the scheduler synchronously, but a mid-loop
  // push_back past the mask would be kept untouched).
  std::vector<char> picked(queue_.size(), 0);
  size_t left = queue_.size();
  bool decode_phase = options_.decode_priority;

  while (left > 0 && batch->size() < options_.max_batch_requests &&
         total_tokens < options_.max_batch_tokens) {
    size_t pick = PickNext(taken, picked, decode_phase);
    if (pick == kNoPick) {
      if (decode_phase) {
        decode_phase = false;  // Decodes exhausted; top up with one prefill.
        continue;
      }
      break;
    }
    picked[pick] = 1;
    --left;
    bool decode = IsDecode(queue_[pick]);
    PredRequest request = std::move(queue_[pick]);
    ++taken[request.lip];
    StatusOr<uint64_t> context = Validate(request);
    if (!context.ok()) {
      ++stats_.failed;
      RecordQueueWait(request);
      request.complete(PredResult{context.status(), {}});
      continue;
    }
    // Bring the file fully on-device; the implied PCIe traffic is charged to
    // this batch below.
    Status restore = kvfs_->RestoreToGpu(request.kv);
    if (!restore.ok()) {
      if (restore.code() == StatusCode::kResourceExhausted) {
        (void)RequeueForMemory(request, restore);
      } else {
        ++stats_.failed;
        RecordQueueWait(request);
        request.complete(PredResult{restore, {}});
      }
      continue;
    }
    RecordQueueWait(request);
    // Tokens a split prefill appended in earlier chunks are fresh compute,
    // not reused prefix.
    stats_.prefix_reuse_tokens +=
        *context - std::min<uint64_t>(*context, request.chunk_done);
    uint64_t take = ChunkTake(request);
    if (take < request.tokens.size() || request.chunk_done > 0) {
      ++stats_.prefill_chunks;
    }
    if (decode) {
      stats_.decode_tokens_batched += take;
    } else {
      stats_.prefill_tokens_batched += take;
    }
    items.push_back(WorkItem{take, *context});
    total_tokens += take;
    batch->push_back(BatchEntry{std::move(request), take});
    if (!decode_phase && options_.decode_priority) {
      break;  // Decode-priority batches carry at most one prefill chunk.
    }
  }

  // Compact the queue: drop picked slots, keep everything else (including
  // entries appended past the mask while completing failures above).
  std::deque<PredRequest> kept;
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (i < picked.size() && picked[i] != 0) {
      continue;
    }
    kept.push_back(std::move(queue_[i]));
  }
  queue_ = std::move(kept);

  if (batch->empty()) {
    // Everything in this round failed validation; look again.
    MaybeLaunch();
    return;
  }

  uint64_t transfer_bytes = kvfs_->TakePendingTransferBytes();
  ++stats_.batches;
  device_->Execute(std::move(items), transfer_bytes, [this, batch] {
    next_launch_time_ = sim_->now() + options_.formation_delay;
    for (BatchEntry& entry : *batch) {
      CompleteRequest(entry.request, entry.take);
    }
    MaybeLaunch();
  });
}

void InferenceScheduler::CancelLip(LipId lip) {
  std::deque<PredRequest> kept;
  for (PredRequest& request : queue_) {
    if (request.lip != lip) {
      kept.push_back(std::move(request));
      continue;
    }
    ++stats_.cancelled;
    RecordQueueWait(request);
    request.complete(PredResult{
        DeadlineExceededError("pred cancelled: lip deadline expired"), {}});
  }
  queue_ = std::move(kept);
  // Requests sleeping out a memory-retry backoff are caught when their
  // retry event fires (see RequeueForMemory).
  cancelled_lips_.insert(lip);
}

bool InferenceScheduler::RequeueForMemory(PredRequest& request, const Status& why) {
  if (request.memory_retries >= options_.max_memory_retries) {
    ++stats_.failed;
    RecordQueueWait(request);
    request.complete(PredResult{why, {}});
    return false;
  }
  ++request.memory_retries;
  ++stats_.memory_requeues;
  stats_.max_memory_retry_depth =
      std::max(stats_.max_memory_retry_depth, request.memory_retries);
  // Exponential backoff: base * 2^(retries-1), capped. Shift width is bounded
  // by the cap check below (cap/base fits in far fewer than 63 bits).
  SimDuration backoff = options_.memory_retry_backoff;
  for (uint32_t i = 1; i < request.memory_retries && backoff < options_.memory_retry_backoff_cap; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.memory_retry_backoff_cap);
  auto retry = std::make_shared<PredRequest>(std::move(request));
  sim_->ScheduleAfter(backoff, [this, retry] {
    if (cancelled_lips_.count(retry->lip) != 0) {
      ++stats_.cancelled;
      RecordQueueWait(*retry);
      retry->complete(PredResult{
          DeadlineExceededError("pred cancelled: lip deadline expired"), {}});
      return;
    }
    queue_.push_back(std::move(*retry));
    MaybeLaunch();
  });
  return true;
}

void InferenceScheduler::CompleteRequest(PredRequest& request, uint64_t take) {
  // Re-validate: another LIP may have appended to a shared file while this
  // batch was executing.
  StatusOr<uint64_t> length = Validate(request);
  if (!length.ok()) {
    ++stats_.failed;
    request.complete(PredResult{length.status(), {}});
    return;
  }

  HiddenState state;
  if (*length == 0) {
    state = model_->InitialState();
  } else {
    StatusOr<HiddenState> tail = kvfs_->TailState(request.kv);
    if (!tail.ok()) {
      ++stats_.failed;
      request.complete(PredResult{tail.status(), {}});
      return;
    }
    state = *tail;
  }

  take = std::min<uint64_t>(take, request.tokens.size());
  std::vector<TokenRecord> records;
  records.reserve(take);
  std::vector<Distribution> dists;
  dists.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    state = model_->Advance(state, request.tokens[i], request.positions[i]);
    records.push_back(TokenRecord{request.tokens[i], request.positions[i], state});
    dists.push_back(model_->Predict(state));
  }

  Status append = kvfs_->Append(request.kv, records);
  if (!append.ok()) {
    if (append.code() == StatusCode::kResourceExhausted) {
      // The whole remaining request (this chunk included) bounces; the next
      // launch re-derives the chunk split.
      (void)RequeueForMemory(request, append);
      return;
    }
    ++stats_.failed;
    request.complete(PredResult{append, {}});
    return;
  }

  if (take < request.tokens.size()) {
    // A prefill chunk: bank its distributions and re-queue the remainder as
    // a position-contiguous continuation. The continuation keeps the
    // original submit time, LIP identity, and completion callback, so
    // fair-share, deadlines, and memory-requeue treat it as the one request
    // it is. Front of the queue: under FIFO the prefill finishes as early as
    // unchunked would; decode-priority packing reorders around it anyway.
    if (request.chunk_dists == nullptr) {
      ++stats_.prefills_chunked;
      request.chunk_dists = std::make_shared<std::vector<Distribution>>();
    }
    request.chunk_dists->insert(request.chunk_dists->end(), dists.begin(),
                                dists.end());
    request.chunk_done += take;
    request.tokens.erase(request.tokens.begin(),
                         request.tokens.begin() + static_cast<ptrdiff_t>(take));
    request.positions.erase(
        request.positions.begin(),
        request.positions.begin() + static_cast<ptrdiff_t>(take));
    if (cancelled_lips_.count(request.lip) != 0) {
      // The LIP's deadline expired while this chunk was executing; the
      // continuation dies the way a queued request would have.
      ++stats_.cancelled;
      request.complete(PredResult{
          DeadlineExceededError("pred cancelled: lip deadline expired"), {}});
      return;
    }
    queue_.push_front(std::move(request));
    return;
  }

  ++stats_.completed;
  PredResult result;
  result.status = Status::Ok();
  if (request.chunk_dists != nullptr) {
    // Final chunk: deliver the banked distributions of every earlier chunk
    // ahead of this one's — one result, bit-identical to unchunked.
    result.dists = std::move(*request.chunk_dists);
    request.chunk_dists.reset();
  }
  result.dists.insert(result.dists.end(),
                      std::make_move_iterator(dists.begin()),
                      std::make_move_iterator(dists.end()));
  uint64_t pred_tokens = request.chunk_done + take;
  uint64_t context_after = *length + take;
  LipId lip = request.lip;
  request.complete(std::move(result));
  if (prefill_complete_hook_ != nullptr &&
      pred_tokens > options_.decode_classify_tokens) {
    prefill_complete_hook_(lip, context_after);
  }
}

}  // namespace symphony
