#include "src/sched/inference_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

#include "src/common/logging.h"

namespace symphony {

InferenceScheduler::InferenceScheduler(Simulator* sim, Kvfs* kvfs,
                                       const Model* model, Device* device,
                                       std::unique_ptr<BatchPolicy> policy,
                                       InferenceSchedulerOptions options)
    : sim_(sim),
      kvfs_(kvfs),
      model_(model),
      device_(device),
      policy_(std::move(policy)),
      options_(options) {
  assert(policy_ != nullptr);
}

StatusOr<uint64_t> InferenceScheduler::Validate(const PredRequest& request) {
  SYMPHONY_ASSIGN_OR_RETURN(uint64_t length, kvfs_->Length(request.kv));
  for (size_t i = 0; i < request.positions.size(); ++i) {
    int64_t expected = static_cast<int64_t>(length) + static_cast<int64_t>(i);
    if (request.positions[i] != expected) {
      return InvalidArgumentError(
          "pred positions must continue the kv file (expected " +
          std::to_string(expected) + ", got " +
          std::to_string(request.positions[i]) + ")");
    }
  }
  return length;
}

void InferenceScheduler::Submit(PredRequest request) {
  ++stats_.submitted;
  // A fresh submit supersedes any earlier cancellation of this LIP (journal
  // replay re-executes a recovered LIP through the live scheduler).
  cancelled_lips_.erase(request.lip);
  SimTime now = sim_->now();
  if (last_submit_ > 0) {
    double gap_s = std::max(ToSeconds(now - last_submit_), 1e-6);
    double inst_rate = 1.0 / gap_s;
    rate_per_sec_ = rate_per_sec_ == 0.0
                        ? inst_rate
                        : (1.0 - options_.rate_ewma_alpha) * rate_per_sec_ +
                              options_.rate_ewma_alpha * inst_rate;
  }
  last_submit_ = now;
  queue_.push_back(std::move(request));
  MaybeLaunch();
}

void InferenceScheduler::MaybeLaunch() {
  if (recheck_event_ != 0) {
    sim_->Cancel(recheck_event_);
    recheck_event_ = 0;
  }
  if (device_->busy() || queue_.empty()) {
    return;
  }
  if (sim_->now() < next_launch_time_) {
    // Batch-formation window after a completion: wait for just-woken threads
    // to resubmit before launching.
    recheck_event_ = sim_->ScheduleAt(next_launch_time_, [this] {
      recheck_event_ = 0;
      MaybeLaunch();
    });
    return;
  }

  // Build the prospective batch profile for the policy.
  std::vector<WorkItem> items;
  items.reserve(std::min(queue_.size(), options_.max_batch_requests));
  uint64_t total_tokens = 0;
  for (const PredRequest& request : queue_) {
    if (items.size() >= options_.max_batch_requests ||
        total_tokens >= options_.max_batch_tokens) {
      break;
    }
    StatusOr<uint64_t> length = kvfs_->Length(request.kv);
    uint64_t context = length.ok() ? *length : 0;
    items.push_back(WorkItem{request.tokens.size(), context});
    total_tokens += request.tokens.size();
  }

  BatchPolicyInput input;
  input.queue_size = queue_.size();
  input.oldest_wait = sim_->now() - queue_.front().submit_time;
  input.arrival_rate_per_sec = rate_per_sec_;
  input.est_batch_time = device_->EstimateTime(items, 0);
  input.max_batch = options_.max_batch_requests;

  BatchDecision decision = policy_->ShouldLaunch(input);
  if (decision.launch) {
    LaunchBatch();
    return;
  }
  SimDuration delay = std::max<SimDuration>(decision.recheck_after, Micros(10));
  recheck_event_ = sim_->ScheduleAfter(delay, [this] {
    recheck_event_ = 0;
    MaybeLaunch();
  });
}

// Picks the next request index under the active discipline: FIFO takes the
// head; fair share takes the oldest request among LIPs with the fewest picks
// so far this batch.
size_t InferenceScheduler::PickNext(
    const std::unordered_map<LipId, uint32_t>& taken) const {
  if (options_.discipline == QueueDiscipline::kFifo) {
    return 0;
  }
  size_t best = 0;
  uint32_t best_count = UINT32_MAX;
  for (size_t i = 0; i < queue_.size(); ++i) {
    auto it = taken.find(queue_[i].lip);
    uint32_t count = it == taken.end() ? 0 : it->second;
    if (count < best_count) {
      best = i;
      best_count = count;
      if (count == 0) {
        break;  // Arrival order among zero-count LIPs.
      }
    }
  }
  return best;
}

void InferenceScheduler::LaunchBatch() {
  auto batch = std::make_shared<std::vector<PredRequest>>();
  std::vector<WorkItem> items;
  uint64_t total_tokens = 0;
  std::unordered_map<LipId, uint32_t> taken;

  while (!queue_.empty() && batch->size() < options_.max_batch_requests &&
         total_tokens < options_.max_batch_tokens) {
    size_t pick = PickNext(taken);
    PredRequest request = std::move(queue_[pick]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    ++taken[request.lip];
    StatusOr<uint64_t> context = Validate(request);
    if (!context.ok()) {
      ++stats_.failed;
      request.complete(PredResult{context.status(), {}});
      continue;
    }
    // Bring the file fully on-device; the implied PCIe traffic is charged to
    // this batch below.
    Status restore = kvfs_->RestoreToGpu(request.kv);
    if (!restore.ok()) {
      if (restore.code() == StatusCode::kResourceExhausted) {
        (void)RequeueForMemory(request, restore);
      } else {
        ++stats_.failed;
        request.complete(PredResult{restore, {}});
      }
      continue;
    }
    queue_waits_ms_.Add(ToMillis(sim_->now() - request.submit_time));
    stats_.prefix_reuse_tokens += *context;
    items.push_back(WorkItem{request.tokens.size(), *context});
    total_tokens += request.tokens.size();
    batch->push_back(std::move(request));
  }

  if (batch->empty()) {
    // Everything in this round failed validation; look again.
    MaybeLaunch();
    return;
  }

  uint64_t transfer_bytes = kvfs_->TakePendingTransferBytes();
  ++stats_.batches;
  device_->Execute(std::move(items), transfer_bytes, [this, batch] {
    next_launch_time_ = sim_->now() + options_.formation_delay;
    for (PredRequest& request : *batch) {
      CompleteRequest(request);
    }
    MaybeLaunch();
  });
}

void InferenceScheduler::CancelLip(LipId lip) {
  std::deque<PredRequest> kept;
  for (PredRequest& request : queue_) {
    if (request.lip != lip) {
      kept.push_back(std::move(request));
      continue;
    }
    ++stats_.cancelled;
    request.complete(PredResult{
        DeadlineExceededError("pred cancelled: lip deadline expired"), {}});
  }
  queue_ = std::move(kept);
  // Requests sleeping out a memory-retry backoff are caught when their
  // retry event fires (see RequeueForMemory).
  cancelled_lips_.insert(lip);
}

bool InferenceScheduler::RequeueForMemory(PredRequest& request, const Status& why) {
  if (request.memory_retries >= options_.max_memory_retries) {
    ++stats_.failed;
    request.complete(PredResult{why, {}});
    return false;
  }
  ++request.memory_retries;
  ++stats_.memory_requeues;
  stats_.max_memory_retry_depth =
      std::max(stats_.max_memory_retry_depth, request.memory_retries);
  // Exponential backoff: base * 2^(retries-1), capped. Shift width is bounded
  // by the cap check below (cap/base fits in far fewer than 63 bits).
  SimDuration backoff = options_.memory_retry_backoff;
  for (uint32_t i = 1; i < request.memory_retries && backoff < options_.memory_retry_backoff_cap; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.memory_retry_backoff_cap);
  auto retry = std::make_shared<PredRequest>(std::move(request));
  sim_->ScheduleAfter(backoff, [this, retry] {
    if (cancelled_lips_.count(retry->lip) != 0) {
      ++stats_.cancelled;
      retry->complete(PredResult{
          DeadlineExceededError("pred cancelled: lip deadline expired"), {}});
      return;
    }
    queue_.push_back(std::move(*retry));
    MaybeLaunch();
  });
  return true;
}

void InferenceScheduler::CompleteRequest(PredRequest& request) {
  // Re-validate: another LIP may have appended to a shared file while this
  // batch was executing.
  StatusOr<uint64_t> length = Validate(request);
  if (!length.ok()) {
    ++stats_.failed;
    request.complete(PredResult{length.status(), {}});
    return;
  }

  HiddenState state;
  if (*length == 0) {
    state = model_->InitialState();
  } else {
    StatusOr<HiddenState> tail = kvfs_->TailState(request.kv);
    if (!tail.ok()) {
      ++stats_.failed;
      request.complete(PredResult{tail.status(), {}});
      return;
    }
    state = *tail;
  }

  std::vector<TokenRecord> records;
  records.reserve(request.tokens.size());
  PredResult result;
  result.dists.reserve(request.tokens.size());
  for (size_t i = 0; i < request.tokens.size(); ++i) {
    state = model_->Advance(state, request.tokens[i], request.positions[i]);
    records.push_back(TokenRecord{request.tokens[i], request.positions[i], state});
    result.dists.push_back(model_->Predict(state));
  }

  Status append = kvfs_->Append(request.kv, records);
  if (!append.ok()) {
    if (append.code() == StatusCode::kResourceExhausted) {
      (void)RequeueForMemory(request, append);
      return;
    }
    ++stats_.failed;
    request.complete(PredResult{append, {}});
    return;
  }
  ++stats_.completed;
  result.status = Status::Ok();
  request.complete(std::move(result));
}

}  // namespace symphony
