// Simulated GPU device.
//
// Executes one batch of model work at a time, consuming virtual time
// according to the CostModel; host<->device transfer bytes (KV restore,
// eviction offload) are charged before the compute phase. The device is the
// only component that advances time for model computation, so GPU utilization
// falls straight out of its busy-time accounting.
#ifndef SRC_GPU_DEVICE_H_
#define SRC_GPU_DEVICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/model/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace symphony {

struct DeviceStats {
  uint64_t batches = 0;
  uint64_t items = 0;
  uint64_t new_tokens = 0;
  uint64_t transfer_bytes = 0;
  SimDuration busy_time = 0;
  SimDuration transfer_time = 0;
};

class Device {
 public:
  Device(Simulator* sim, CostModel cost_model)
      : sim_(sim), cost_(std::move(cost_model)) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  bool busy() const { return busy_; }
  const CostModel& cost_model() const { return cost_; }

  // Starts executing `items` after transferring `transfer_bytes` over PCIe.
  // `done` fires in virtual time when the batch completes. The device must
  // be idle. Returns the predicted completion time.
  SimTime Execute(std::vector<WorkItem> items, uint64_t transfer_bytes,
                  std::function<void()> done);

  // Predicted execution time for a hypothetical batch (for batch policies).
  SimDuration EstimateTime(std::span<const WorkItem> items,
                           uint64_t transfer_bytes) const;

  // Predicted time to execute `item` as position-contiguous chunks of at
  // most `chunk_tokens` new tokens each, one chunk per batch with the
  // context growing between chunks (0 = a single unchunked batch). The gap
  // vs EstimateTime({item}, 0) is the per-chunk launch overhead a scheduler
  // pays for stall-free packing; handoff cost gates use it to price a
  // prefill before it happens.
  SimDuration EstimateChunkedTime(const WorkItem& item,
                                  uint64_t chunk_tokens) const;

  // Busy fraction since simulation start.
  double Utilization() const;

  const DeviceStats& stats() const { return stats_; }
  const SampleSeries& batch_sizes() const { return batch_sizes_; }

  // Optional execution tracing: one span per batch on `track`.
  void set_trace(TraceRecorder* trace, std::string track = "gpu") {
    trace_ = trace;
    trace_track_ = std::move(track);
  }

 private:
  Simulator* sim_;
  CostModel cost_;
  bool busy_ = false;
  DeviceStats stats_;
  SampleSeries batch_sizes_;
  TraceRecorder* trace_ = nullptr;
  std::string trace_track_ = "gpu";
};

}  // namespace symphony

#endif  // SRC_GPU_DEVICE_H_
