#include "src/gpu/device.h"

#include <cassert>
#include <cstdio>

namespace symphony {

SimDuration Device::EstimateTime(std::span<const WorkItem> items,
                                 uint64_t transfer_bytes) const {
  SimDuration compute = cost_.BatchTime(items);
  if (transfer_bytes == 0) {
    return compute;
  }
  // Copy engines run PCIe transfers concurrently with compute (chunked
  // pipelining), so a batch is bounded by the slower of the two.
  return std::max(compute, cost_.TransferTime(transfer_bytes));
}

SimDuration Device::EstimateChunkedTime(const WorkItem& item,
                                        uint64_t chunk_tokens) const {
  if (chunk_tokens == 0 || item.new_tokens <= chunk_tokens) {
    WorkItem whole = item;
    return cost_.BatchTime({&whole, 1});
  }
  SimDuration total = 0;
  uint64_t done = 0;
  while (done < item.new_tokens) {
    uint64_t take = std::min(chunk_tokens, item.new_tokens - done);
    WorkItem chunk{take, item.context_start + done};
    total += cost_.BatchTime({&chunk, 1});
    done += take;
  }
  return total;
}

SimTime Device::Execute(std::vector<WorkItem> items, uint64_t transfer_bytes,
                        std::function<void()> done) {
  assert(!busy_ && "device already executing a batch");
  assert(!items.empty());
  busy_ = true;

  SimDuration transfer = transfer_bytes > 0 ? cost_.TransferTime(transfer_bytes) : 0;
  SimDuration compute = cost_.BatchTime(items);
  // Copy engines overlap PCIe with compute; the batch takes the longer one.
  SimDuration elapsed = std::max(transfer, compute);

  ++stats_.batches;
  stats_.items += items.size();
  for (const WorkItem& item : items) {
    stats_.new_tokens += item.new_tokens;
  }
  stats_.transfer_bytes += transfer_bytes;
  stats_.transfer_time += transfer;
  stats_.busy_time += elapsed;
  batch_sizes_.Add(static_cast<double>(items.size()));

  if (trace_ != nullptr) {
    char label[96];
    std::snprintf(label, sizeof(label), "batch n=%zu tok=%llu%s", items.size(),
                  static_cast<unsigned long long>(
                      static_cast<uint64_t>(
                          [&] {
                            uint64_t t = 0;
                            for (const WorkItem& item : items) {
                              t += item.new_tokens;
                            }
                            return t;
                          }())),
                  transfer_bytes > 0 ? " +pcie" : "");
    trace_->Span(trace_track_, label, sim_->now(), elapsed);
  }

  SimTime completion = sim_->now() + elapsed;
  sim_->ScheduleAt(completion, [this, done = std::move(done)] {
    busy_ = false;
    done();
  });
  return completion;
}

double Device::Utilization() const {
  if (sim_->now() == 0) {
    return 0.0;
  }
  return static_cast<double>(stats_.busy_time) / static_cast<double>(sim_->now());
}

}  // namespace symphony
