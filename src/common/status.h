// Lightweight Status / StatusOr error-handling vocabulary for Symphony.
//
// Symphony is exception-free by policy: fallible operations return Status or
// StatusOr<T>. Status carries a coarse code plus a human-readable message so
// system-call failures surface to LIPs the way errno does to POSIX programs.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace symphony {

// Error categories, deliberately close to POSIX errno semantics since KVFS
// and the LIP system-call surface mimic a file system / kernel boundary.
enum class StatusCode {
  kOk = 0,
  kNotFound,          // ENOENT: no such KV file / process / tool.
  kAlreadyExists,     // EEXIST: create on an existing path without O_TRUNC.
  kPermissionDenied,  // EACCES: KVFS ACL rejected the operation.
  kInvalidArgument,   // EINVAL: malformed request (bad positions, empty batch).
  kResourceExhausted, // ENOMEM/ENOSPC: page pool or budget exhausted.
  kFailedPrecondition,// EBUSY-like: lock held, file still open, wrong state.
  kOutOfRange,        // position or token index beyond file length.
  kUnavailable,       // transient: retryable (device draining, queue full).
  kQuotaExceeded,     // EDQUOT: per-LIP resource quota hit (not retryable).
  kInternal,          // invariant violation; indicates a Symphony bug.
  kDeadlineExceeded,  // ETIMEDOUT: tool-call timeout or per-LIP deadline.
  kDeadlock,          // EDEADLK: credit-wait cycle detected on an IPC channel.
};

// Transient failures are safe to retry after a backoff; everything else is
// permanent from the caller's perspective (see docs/API.md "Failure
// semantics"). kDeadlineExceeded is transient at the tool-call level (the
// next attempt may be faster) but permanent once a LIP's own deadline has
// expired — the runtime never retries on the LIP's behalf.
inline bool IsTransientError(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded;
}

// Returns a stable identifier such as "NOT_FOUND" for logs and test output.
std::string_view StatusCodeName(StatusCode code);

// Value type describing the result of a fallible operation.
class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "NOT_FOUND: no such file: /kv/doc_17".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring absl::*Error.
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status InvalidArgumentError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status QuotaExceededError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status DeadlockError(std::string message);

// StatusOr<T>: either an OK status with a value, or a non-OK status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit conversions keep call sites terse: `return value;` or
  // `return NotFoundError(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && {
    assert(ok());
    return *std::move(value_);
  }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when non-OK.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace symphony

// Propagates a non-OK Status from an expression, like absl's RETURN_IF_ERROR.
#define SYMPHONY_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::symphony::Status _st = (expr);              \
    if (!_st.ok()) {                              \
      return _st;                                 \
    }                                             \
  } while (0)

// Evaluates a StatusOr expression, assigning the value or propagating error.
#define SYMPHONY_CONCAT_INNER_(a, b) a##b
#define SYMPHONY_CONCAT_(a, b) SYMPHONY_CONCAT_INNER_(a, b)
#define SYMPHONY_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) {                                      \
    return tmp.status();                                \
  }                                                     \
  lhs = std::move(tmp).value()
#define SYMPHONY_ASSIGN_OR_RETURN(lhs, expr) \
  SYMPHONY_ASSIGN_OR_RETURN_IMPL_(SYMPHONY_CONCAT_(_sor_, __LINE__), lhs, expr)

#endif  // SRC_COMMON_STATUS_H_
