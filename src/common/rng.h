// Deterministic pseudo-random number generation for Symphony.
//
// Every stochastic component (workload arrivals, popularity draws, sampling
// temperatures) consumes a Rng seeded explicitly, so simulations replay
// bit-identically. The core generator is xoshiro256++, seeded via splitmix64.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace symphony {

// splitmix64: used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256++ by Blackman & Vigna. Fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (uint64_t& word : s_) {
      word = SplitMix64(sm);
    }
  }

  // Uniform 64-bit draw.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's method.
  uint64_t NextBounded(uint64_t bound) {
    // Rejection-free multiply-shift; bias is negligible for bound << 2^64 and
    // acceptable for simulation purposes.
    unsigned __int128 m = static_cast<unsigned __int128>(NextU64()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in (0, 1] — safe as a log() argument.
  double NextDoubleOpenLeft() {
    return (static_cast<double>(NextU64() >> 11) + 1.0) * 0x1.0p-53;
  }

  // Exponentially distributed with the given rate (events per unit time).
  double NextExponential(double rate) {
    return -std::log(NextDoubleOpenLeft()) / rate;
  }

  // Standard normal via Box-Muller (single value; the pair's twin discarded).
  double NextGaussian() {
    double u1 = NextDoubleOpenLeft();
    double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  // Pareto(alpha, x_min): heavy-tailed popularity / size distribution.
  double NextPareto(double alpha, double x_min) {
    return x_min / std::pow(NextDoubleOpenLeft(), 1.0 / alpha);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace symphony

#endif  // SRC_COMMON_RNG_H_
