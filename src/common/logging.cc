#include "src/common/logging.h"

#include <cstdio>

namespace symphony {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel LogConfig::level_ = LogLevel::kWarning;
LogConfig::Sink LogConfig::sink_ = nullptr;

void LogConfig::set_sink(Sink sink) { sink_ = std::move(sink); }

void LogConfig::Emit(LogLevel level, const std::string& message) {
  if (sink_) {
    sink_(level, message);
    return;
  }
  std::fprintf(stderr, "[%.*s] %s\n", static_cast<int>(LogLevelName(level).size()),
               LogLevelName(level).data(), message.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  std::string_view path(file);
  size_t slash = path.find_last_of('/');
  if (slash != std::string_view::npos) {
    path.remove_prefix(slash + 1);
  }
  stream_ << path << ":" << line << " ";
}

LogMessage::~LogMessage() { LogConfig::Emit(level_, stream_.str()); }

}  // namespace symphony
