// Minimal leveled logging.
//
// Symphony components log through SYMPHONY_LOG(level) streams. The sink is a
// process-global function pointer so tests can capture output; the default
// sink writes to stderr. Logging below the active level compiles to a cheap
// branch around stream construction.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace symphony {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

std::string_view LogLevelName(LogLevel level);

// Global log configuration. Not thread-safe by design: Symphony's simulation
// core is single-threaded; configure logging before running a simulation.
class LogConfig {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel active_level() { return level_; }
  static void set_level(LogLevel new_level) { level_ = new_level; }

  // Replaces the sink; pass nullptr to restore the default stderr sink.
  static void set_sink(Sink sink);
  static void Emit(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
  static Sink sink_;
};

// RAII stream that emits one log record on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace symphony

#define SYMPHONY_LOG(level)                                                     \
  if (::symphony::LogLevel::level < ::symphony::LogConfig::active_level()) {    \
  } else                                                                        \
    ::symphony::LogMessage(::symphony::LogLevel::level, __FILE__, __LINE__).stream()

#endif  // SRC_COMMON_LOGGING_H_
