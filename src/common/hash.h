// Hashing utilities.
//
// Symphony's deterministic pseudo-LLM represents Transformer hidden state as a
// rolling context hash: state(t) = Mix(state(t-1), token_id, position). Two
// token sequences share KV state exactly when they share a prefix — the same
// contract a causal Transformer's KV cache obeys. These helpers must therefore
// be stable across platforms and runs.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace symphony {

// Stateless 64-bit finalizer (murmur3 fmix64).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Order-sensitive combiner (boost-style, 64-bit constants).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

// FNV-1a over bytes; used for stable string keys (KVFS paths, tool names).
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace symphony

#endif  // SRC_COMMON_HASH_H_
