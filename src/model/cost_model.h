// Analytical execution-time model for the simulated GPU.
//
// Roofline-style: a batch step costs max(compute time, memory time) plus a
// fixed kernel-launch overhead. Compute is FLOPs-bound (2*params per token);
// memory is one pass over the weights per step plus FlashAttention-style KV
// traffic (the whole context is re-read once per query *block*, so prefill
// amortizes KV reads by the block size while decode reads the full context
// per generated token). Constants default to an NVIDIA A100-80GB, matching
// the paper's evaluation platform.
#ifndef SRC_MODEL_COST_MODEL_H_
#define SRC_MODEL_COST_MODEL_H_

#include <cstdint>
#include <span>

#include "src/model/model_config.h"
#include "src/sim/time.h"

namespace symphony {

struct HardwareConfig {
  double peak_flops = 312e12;        // fp16 tensor-core peak.
  double compute_efficiency = 0.5;   // Achievable fraction of peak.
  double hbm_bandwidth = 2.0e12;     // Bytes/s.
  double memory_efficiency = 0.8;
  double pcie_bandwidth = 25e9;      // Bytes/s, host<->device transfers.
  SimDuration pcie_latency = Micros(20);
  // Replica<->replica / replica<->snapshot-store transfers (cluster
  // interconnect, e.g. 100 Gb/s Ethernet): journal shipping for migration and
  // KV snapshot publish/import (src/store) are charged against this.
  double interconnect_bandwidth = 12.5e9;  // Bytes/s.
  SimDuration interconnect_latency = Micros(50);
  SimDuration kernel_overhead = Micros(150);  // Per batch step.
  uint64_t hbm_bytes = 80ULL * 1000 * 1000 * 1000;
  uint64_t host_bytes = 256ULL * 1000 * 1000 * 1000;
  uint64_t activation_reserve_bytes = 4ULL * 1000 * 1000 * 1000;
  uint32_t attention_block = 256;    // Query-block size for prefill KV reads.

  static HardwareConfig A100() { return HardwareConfig{}; }
};

// One model invocation's worth of work for a single request within a batch:
// process `new_tokens` whose attention context starts at `context_start`
// tokens (i.e. the request's KV file already holds context_start tokens).
struct WorkItem {
  uint64_t new_tokens = 0;
  uint64_t context_start = 0;
};

class CostModel {
 public:
  CostModel(const ModelConfig& model, HardwareConfig hw = HardwareConfig::A100())
      : model_(model), hw_(hw) {}

  const HardwareConfig& hardware() const { return hw_; }
  const ModelConfig& model() const { return model_; }

  // Virtual time to execute one batch step covering all items.
  SimDuration BatchTime(std::span<const WorkItem> items) const;

  // Host<->device transfer (KV offload/restore).
  SimDuration TransferTime(uint64_t bytes) const;

  // Cross-replica network transfer: serialization at interconnect bandwidth
  // plus propagation latency. The latency applies even for zero bytes — an
  // empty message is still a packet crossing the wire. (Callers that know no
  // packet moved at all — e.g. a fully local fetch — skip the call, they
  // don't rely on a zero-byte freebie.)
  SimDuration NetworkTime(uint64_t bytes) const;

  // KV bytes available on-device after weights and activation reserve.
  uint64_t DeviceKvBudgetBytes() const;
  uint64_t DeviceKvBudgetTokens() const {
    return DeviceKvBudgetBytes() / model_.KvBytesPerToken();
  }

 private:
  ModelConfig model_;
  HardwareConfig hw_;
};

}  // namespace symphony

#endif  // SRC_MODEL_COST_MODEL_H_
