// Deterministic word-level tokenizer with byte fallback.
//
// Layout of the id space:
//   0 PAD, 1 BOS, 2 EOS, 3 UNK,
//   4..259      byte tokens (fallback for out-of-vocabulary words),
//   260..V-1    word tokens registered at construction.
//
// Encoding splits on ASCII whitespace; known words map to a single id and
// unknown words decompose into byte tokens. Decoding is the exact inverse, so
// Decode(Encode(s)) == canonical-whitespace(s), which tests rely on.
#ifndef SRC_MODEL_TOKENIZER_H_
#define SRC_MODEL_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace symphony {

using TokenId = int32_t;

inline constexpr TokenId kPadToken = 0;
inline constexpr TokenId kBosToken = 1;
inline constexpr TokenId kEosToken = 2;
inline constexpr TokenId kUnkToken = 3;
inline constexpr TokenId kFirstByteToken = 4;
inline constexpr TokenId kFirstWordToken = kFirstByteToken + 256;

class Tokenizer {
 public:
  // Builds a tokenizer whose word table is filled with procedurally generated
  // words ("w0", "w1", ...). For vocabularies larger than 512 words, 256
  // slots are left free for AddWord. vocab_size must be >= kFirstWordToken.
  explicit Tokenizer(uint32_t vocab_size);

  // Registers `word` (no whitespace) and returns its id; returns the existing
  // id if already present. Fails with kResourceExhausted when the vocab is
  // full and with kInvalidArgument if `word` contains whitespace.
  StatusOr<TokenId> AddWord(std::string_view word);

  // Splits on whitespace; known words become word tokens, unknown words
  // decompose into byte tokens.
  std::vector<TokenId> Encode(std::string_view text) const;

  // Encode plus BOS/EOS framing.
  std::vector<TokenId> EncodeWithSpecials(std::string_view text) const;

  // Inverse of Encode. Byte-token runs are concatenated into one word.
  std::string Decode(const std::vector<TokenId>& tokens) const;

  // Single-token rendering; specials render as "<pad>" etc.
  std::string TokenToString(TokenId id) const;

  uint32_t vocab_size() const { return vocab_size_; }
  size_t num_words() const { return words_.size(); }

  // Id for a known word; kUnkToken sentinel absent.
  TokenId LookupWord(std::string_view word) const;

 private:
  uint32_t vocab_size_;
  std::vector<std::string> words_;  // words_[i] has id kFirstWordToken + i.
  std::unordered_map<std::string, TokenId> word_ids_;
};

}  // namespace symphony

#endif  // SRC_MODEL_TOKENIZER_H_
