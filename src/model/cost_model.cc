#include "src/model/cost_model.h"

#include <algorithm>
#include <cassert>

namespace symphony {

SimDuration CostModel::BatchTime(std::span<const WorkItem> items) const {
  if (items.empty()) {
    return 0;
  }
  double total_new = 0.0;
  double kv_read_bytes = 0.0;
  const double kv_per_token = static_cast<double>(model_.KvBytesPerToken());
  for (const WorkItem& item : items) {
    assert(item.new_tokens > 0);
    double n = static_cast<double>(item.new_tokens);
    double ctx0 = static_cast<double>(item.context_start);
    total_new += n;
    // Sum of context lengths attended by each of the n new tokens:
    //   sum_{i=1..n} (ctx0 + i) = n*ctx0 + n(n+1)/2.
    double attended = n * ctx0 + n * (n + 1.0) / 2.0;
    // FlashAttention re-reads KV once per query block, not per query token.
    double block = static_cast<double>(
        std::min<uint64_t>(item.new_tokens, hw_.attention_block));
    kv_read_bytes += attended * kv_per_token / block;
    // Newly produced KV is written once.
    kv_read_bytes += n * kv_per_token;
  }

  double compute_s = total_new * model_.FlopsPerToken() /
                     (hw_.peak_flops * hw_.compute_efficiency);
  double memory_s = (static_cast<double>(model_.WeightBytes()) + kv_read_bytes) /
                    (hw_.hbm_bandwidth * hw_.memory_efficiency);
  return hw_.kernel_overhead + DurationFromSeconds(std::max(compute_s, memory_s));
}

SimDuration CostModel::NetworkTime(uint64_t bytes) const {
  return hw_.interconnect_latency +
         DurationFromSeconds(static_cast<double>(bytes) /
                             hw_.interconnect_bandwidth);
}

SimDuration CostModel::TransferTime(uint64_t bytes) const {
  return hw_.pcie_latency +
         DurationFromSeconds(static_cast<double>(bytes) / hw_.pcie_bandwidth);
}

uint64_t CostModel::DeviceKvBudgetBytes() const {
  uint64_t reserved = model_.WeightBytes() + hw_.activation_reserve_bytes;
  if (reserved >= hw_.hbm_bytes) {
    return 0;
  }
  return hw_.hbm_bytes - reserved;
}

}  // namespace symphony
