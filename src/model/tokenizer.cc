#include "src/model/tokenizer.h"

#include <cassert>
#include <cctype>

namespace symphony {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}

bool ContainsSpace(std::string_view word) {
  for (char c : word) {
    if (IsSpace(c)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Tokenizer::Tokenizer(uint32_t vocab_size) : vocab_size_(vocab_size) {
  assert(vocab_size_ >= static_cast<uint32_t>(kFirstWordToken));
  uint32_t capacity = vocab_size_ - kFirstWordToken;
  // Leave headroom for caller-registered words (tool names, tags) when the
  // vocabulary is large enough to afford it.
  uint32_t procedural = capacity > 512 ? capacity - 256 : capacity;
  words_.reserve(capacity);
  word_ids_.reserve(capacity);
  for (uint32_t i = 0; i < procedural; ++i) {
    std::string word = "w" + std::to_string(i);
    word_ids_.emplace(word, static_cast<TokenId>(kFirstWordToken + words_.size()));
    words_.push_back(std::move(word));
  }
}

StatusOr<TokenId> Tokenizer::AddWord(std::string_view word) {
  if (word.empty() || ContainsSpace(word)) {
    return InvalidArgumentError("word must be non-empty and whitespace-free");
  }
  auto it = word_ids_.find(std::string(word));
  if (it != word_ids_.end()) {
    return it->second;
  }
  if (kFirstWordToken + words_.size() >= vocab_size_) {
    return ResourceExhaustedError("vocabulary full");
  }
  TokenId id = static_cast<TokenId>(kFirstWordToken + words_.size());
  words_.emplace_back(word);
  word_ids_.emplace(std::string(word), id);
  return id;
}

TokenId Tokenizer::LookupWord(std::string_view word) const {
  auto it = word_ids_.find(std::string(word));
  return it == word_ids_.end() ? kUnkToken : it->second;
}

std::vector<TokenId> Tokenizer::Encode(std::string_view text) const {
  std::vector<TokenId> out;
  size_t i = 0;
  bool prev_was_bytes = false;
  while (i < text.size()) {
    while (i < text.size() && IsSpace(text[i])) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && !IsSpace(text[i])) {
      ++i;
    }
    if (start == i) {
      break;
    }
    std::string_view word = text.substr(start, i - start);
    TokenId id = LookupWord(word);
    if (id != kUnkToken) {
      out.push_back(id);
      prev_was_bytes = false;
    } else {
      // Two byte-encoded words in a row need an explicit space byte, or the
      // runs would merge on decode.
      if (prev_was_bytes) {
        out.push_back(kFirstByteToken + static_cast<TokenId>(' '));
      }
      for (unsigned char c : word) {
        out.push_back(kFirstByteToken + static_cast<TokenId>(c));
      }
      prev_was_bytes = true;
    }
  }
  return out;
}

std::vector<TokenId> Tokenizer::EncodeWithSpecials(std::string_view text) const {
  std::vector<TokenId> out;
  out.push_back(kBosToken);
  std::vector<TokenId> body = Encode(text);
  out.insert(out.end(), body.begin(), body.end());
  out.push_back(kEosToken);
  return out;
}

std::string Tokenizer::TokenToString(TokenId id) const {
  switch (id) {
    case kPadToken:
      return "<pad>";
    case kBosToken:
      return "<bos>";
    case kEosToken:
      return "<eos>";
    case kUnkToken:
      return "<unk>";
    default:
      break;
  }
  if (id >= kFirstByteToken && id < kFirstWordToken) {
    return std::string(1, static_cast<char>(id - kFirstByteToken));
  }
  size_t index = static_cast<size_t>(id - kFirstWordToken);
  if (id >= kFirstWordToken && index < words_.size()) {
    return words_[index];
  }
  return "<invalid>";
}

std::string Tokenizer::Decode(const std::vector<TokenId>& tokens) const {
  std::string out;
  bool in_byte_run = false;
  for (TokenId id : tokens) {
    if (id == kBosToken || id == kEosToken || id == kPadToken) {
      in_byte_run = false;
      continue;
    }
    bool is_byte = id >= kFirstByteToken && id < kFirstWordToken;
    if (is_byte && in_byte_run) {
      out += static_cast<char>(id - kFirstByteToken);
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += TokenToString(id);
    in_byte_run = is_byte;
  }
  return out;
}

}  // namespace symphony
