// Next-token distribution of the deterministic pseudo-LLM.
//
// A Distribution is defined constructively from the model's hidden state
// (a 64-bit rolling context hash):
//   * K candidate tokens are drawn pseudo-randomly from the family seed, so
//     models of the same family (target + draft) propose the same candidates;
//   * candidate j gets score -j*kScoreDecay plus model-specific jitter, which
//     differentiates rankings across family members;
//   * every non-candidate token shares a constant floor score.
// Probabilities are the softmax of these scores, which keeps Prob(), Sample()
// and Argmax() exact and O(K) while Dense() stays available (O(vocab)) for
// tests and constrained decoding over small vocabularies.
//
// The same state always yields the same distribution — the property that
// makes KV-cache reuse verifiable end to end.
#ifndef SRC_MODEL_DISTRIBUTION_H_
#define SRC_MODEL_DISTRIBUTION_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/model/model_config.h"
#include "src/model/tokenizer.h"

namespace symphony {

class Distribution {
 public:
  static constexpr int kNumCandidates = 16;
  static constexpr double kScoreDecay = 0.35;
  static constexpr double kFloorScore = -18.0;

  // `config` must outlive the distribution.
  Distribution(uint64_t state, const ModelConfig* config);

  uint64_t state() const { return state_; }

  // Highest-probability token.
  TokenId Argmax() const;

  // Exact probability of `token` at temperature 1.
  double Prob(TokenId token) const;
  double LogProb(TokenId token) const;

  // Samples with inverse-CDF using the caller-supplied uniform u in [0,1).
  // Taking u (not an Rng) keeps the model layer deterministic and lets the
  // sampler own randomness policy.
  TokenId Sample(double u, double temperature = 1.0) const;

  // Greedy over tokens satisfying `allowed`; scans candidates first, then the
  // vocabulary in a state-derived order. Returns kUnkToken if no token is
  // allowed (callers treat that as a grammar dead-end).
  TokenId GreedyMasked(const std::function<bool(TokenId)>& allowed) const;

  // Samples among *allowed candidates* (renormalized); falls back to
  // GreedyMasked's scan when no candidate is allowed.
  TokenId SampleMasked(double u, double temperature,
                       const std::function<bool(TokenId)>& allowed) const;

  // Candidate tokens in score order (rank 0 = Argmax).
  std::vector<TokenId> TopCandidates() const;

  // Full probability vector, length vocab_size. O(vocab); test/analysis use.
  std::vector<double> Dense() const;

  const ModelConfig& config() const { return *config_; }

 private:
  struct Entry {
    TokenId token;
    double score;  // Pre-temperature score.
  };

  double TailMass(double temperature) const;  // Total non-candidate weight.
  double CandidateWeight(double score, double temperature) const;

  uint64_t state_;
  const ModelConfig* config_;
  std::array<Entry, kNumCandidates> entries_;  // Sorted by descending score.
};

}  // namespace symphony

#endif  // SRC_MODEL_DISTRIBUTION_H_
