// The deterministic pseudo-LLM.
//
// Hidden state is a 64-bit rolling hash over (token, position) pairs, seeded
// by the model family. This reproduces exactly the reuse contract of a causal
// Transformer's KV cache: state after token t depends only on the tokens and
// positions at 0..t, so any system-level KV reuse is correct if and only if
// it yields bit-identical states — which tests can check directly.
#ifndef SRC_MODEL_MODEL_H_
#define SRC_MODEL_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/model/distribution.h"
#include "src/model/model_config.h"
#include "src/model/tokenizer.h"

namespace symphony {

// Hidden state type. kv files persist one HiddenState per token.
using HiddenState = uint64_t;

class Model {
 public:
  explicit Model(ModelConfig config) : config_(std::move(config)) {}

  const ModelConfig& config() const { return config_; }

  // State before any token has been consumed.
  HiddenState InitialState() const;

  // Consumes one (token, position) pair. Positions are absolute context
  // indices, as in the paper's pred(kv, tokens, positions) signature; the
  // same token at a different position yields a different state (RoPE-like).
  HiddenState Advance(HiddenState state, TokenId token, int32_t position) const;

  // Next-token distribution given the state *after* the last consumed token.
  Distribution Predict(HiddenState state) const;

  // Convenience: runs Advance over a span, returning the state after each
  // token. states[i] is the state after consuming tokens[0..i].
  std::vector<HiddenState> AdvanceSeq(HiddenState state,
                                      const std::vector<TokenId>& tokens,
                                      int32_t first_position) const;

 private:
  ModelConfig config_;
};

}  // namespace symphony

#endif  // SRC_MODEL_MODEL_H_
