#include "src/model/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/hash.h"

namespace symphony {

namespace {

constexpr uint64_t kCandidateSalt = 0xc0ffee1234567891ULL;
constexpr uint64_t kEosSalt = 0xe05e05e05e05e05eULL;
constexpr uint64_t kTailSalt = 0x7a11aa55deadbeefULL;

}  // namespace

Distribution::Distribution(uint64_t state, const ModelConfig* config)
    : state_(state), config_(config) {
  assert(config != nullptr);
  const uint32_t vocab = config_->vocab_size;
  assert(vocab > kNumCandidates * 2u);

  // Draw distinct candidate tokens from the *family* seed so sibling models
  // (target and draft) agree on the candidate set.
  uint64_t family_state = state_ ^ Mix64(config_->family_seed ^ kCandidateSalt);
  bool eos_boost =
      (Mix64(state_ ^ kEosSalt) % 1000) < config_->eos_bias_permille;

  std::array<TokenId, kNumCandidates> tokens;
  int filled = 0;
  uint64_t probe = family_state;
  while (filled < kNumCandidates) {
    probe = Mix64(probe + 0x9e3779b97f4a7c15ULL);
    TokenId t = static_cast<TokenId>(probe % vocab);
    bool duplicate = false;
    for (int i = 0; i < filled; ++i) {
      if (tokens[static_cast<size_t>(i)] == t) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      tokens[static_cast<size_t>(filled++)] = t;
    }
  }
  if (eos_boost) {
    // Promote EOS into rank 0 (replacing whatever was there, unless EOS is
    // already a candidate — then swap it up).
    int existing = -1;
    for (int i = 0; i < kNumCandidates; ++i) {
      if (tokens[static_cast<size_t>(i)] == kEosToken) {
        existing = i;
        break;
      }
    }
    if (existing >= 0) {
      std::swap(tokens[0], tokens[static_cast<size_t>(existing)]);
    } else {
      tokens[0] = kEosToken;
    }
  }

  // Score by rank with model-specific jitter, then sort descending so that
  // entries_[0] is the argmax for THIS model (family members may disagree).
  for (int j = 0; j < kNumCandidates; ++j) {
    double jitter = 0.0;
    if (config_->score_jitter > 0.0) {
      uint64_t h = Mix64(state_ ^ config_->jitter_seed ^
                         (static_cast<uint64_t>(j) * 0x9e3779b97f4a7c15ULL));
      jitter = (static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5) * config_->score_jitter;
    }
    entries_[static_cast<size_t>(j)] =
        Entry{tokens[static_cast<size_t>(j)], -kScoreDecay * j + jitter};
  }
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) { return a.score > b.score; });
}

double Distribution::CandidateWeight(double score, double temperature) const {
  return std::exp(score / temperature);
}

double Distribution::TailMass(double temperature) const {
  double tail_count =
      static_cast<double>(config_->vocab_size) - static_cast<double>(kNumCandidates);
  return tail_count * std::exp(kFloorScore / temperature);
}

TokenId Distribution::Argmax() const { return entries_[0].token; }

double Distribution::Prob(TokenId token) const {
  double z = TailMass(1.0);
  double token_weight = std::exp(kFloorScore);  // Default: tail token.
  for (const Entry& e : entries_) {
    double w = CandidateWeight(e.score, 1.0);
    z += w;
    if (e.token == token) {
      token_weight = w;
    }
  }
  if (token < 0 || static_cast<uint32_t>(token) >= config_->vocab_size) {
    return 0.0;
  }
  return token_weight / z;
}

double Distribution::LogProb(TokenId token) const { return std::log(Prob(token)); }

TokenId Distribution::Sample(double u, double temperature) const {
  assert(u >= 0.0 && u < 1.0);
  assert(temperature > 0.0);
  double weights[kNumCandidates];
  double z = TailMass(temperature);
  for (int j = 0; j < kNumCandidates; ++j) {
    weights[j] = CandidateWeight(entries_[static_cast<size_t>(j)].score, temperature);
    z += weights[j];
  }
  double target = u * z;
  for (int j = 0; j < kNumCandidates; ++j) {
    if (target < weights[j]) {
      return entries_[static_cast<size_t>(j)].token;
    }
    target -= weights[j];
  }
  // Tail: pick a pseudo-random non-candidate token derived from u's bits.
  uint64_t probe = Mix64(state_ ^ kTailSalt ^
                         static_cast<uint64_t>(target / std::exp(kFloorScore / temperature)));
  const uint32_t vocab = config_->vocab_size;
  for (;;) {
    probe = Mix64(probe + 1);
    TokenId t = static_cast<TokenId>(probe % vocab);
    bool is_candidate = false;
    for (const Entry& e : entries_) {
      if (e.token == t) {
        is_candidate = true;
        break;
      }
    }
    if (!is_candidate) {
      return t;
    }
  }
}

TokenId Distribution::GreedyMasked(const std::function<bool(TokenId)>& allowed) const {
  for (const Entry& e : entries_) {
    if (allowed(e.token)) {
      return e.token;
    }
  }
  // Deterministic vocabulary scan starting at a state-derived offset.
  const uint32_t vocab = config_->vocab_size;
  uint32_t start = static_cast<uint32_t>(Mix64(state_ ^ kTailSalt) % vocab);
  for (uint32_t i = 0; i < vocab; ++i) {
    TokenId t = static_cast<TokenId>((start + i) % vocab);
    if (allowed(t)) {
      return t;
    }
  }
  return kUnkToken;
}

TokenId Distribution::SampleMasked(double u, double temperature,
                                   const std::function<bool(TokenId)>& allowed) const {
  double weights[kNumCandidates];
  double z = 0.0;
  for (int j = 0; j < kNumCandidates; ++j) {
    const Entry& e = entries_[static_cast<size_t>(j)];
    weights[j] = allowed(e.token) ? CandidateWeight(e.score, temperature) : 0.0;
    z += weights[j];
  }
  if (z <= 0.0) {
    return GreedyMasked(allowed);
  }
  double target = u * z;
  for (int j = 0; j < kNumCandidates; ++j) {
    if (weights[j] > 0.0 && target < weights[j]) {
      return entries_[static_cast<size_t>(j)].token;
    }
    target -= weights[j];
  }
  return GreedyMasked(allowed);
}

std::vector<TokenId> Distribution::TopCandidates() const {
  std::vector<TokenId> out;
  out.reserve(kNumCandidates);
  for (const Entry& e : entries_) {
    out.push_back(e.token);
  }
  return out;
}

std::vector<double> Distribution::Dense() const {
  const uint32_t vocab = config_->vocab_size;
  double z = TailMass(1.0);
  double floor_w = std::exp(kFloorScore);
  double weights[kNumCandidates];
  for (int j = 0; j < kNumCandidates; ++j) {
    weights[j] = CandidateWeight(entries_[static_cast<size_t>(j)].score, 1.0);
    z += weights[j];
  }
  std::vector<double> probs(vocab, floor_w / z);
  for (int j = 0; j < kNumCandidates; ++j) {
    probs[static_cast<size_t>(entries_[static_cast<size_t>(j)].token)] = weights[j] / z;
  }
  return probs;
}

}  // namespace symphony
