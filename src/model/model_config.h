// Model geometry and derived constants.
//
// The serving system never inspects model weights; it only needs the shape
// quantities that drive memory accounting (KV bytes per token) and the cost
// model (parameter count, FLOPs). Presets mirror the paper's evaluation model
// (Llama-13B-class) plus a tiny configuration for fast, exhaustive tests.
#ifndef SRC_MODEL_MODEL_CONFIG_H_
#define SRC_MODEL_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/hash.h"

namespace symphony {

struct ModelConfig {
  std::string name;
  // Models in the same "family" share candidate token preferences (so a draft
  // model's guesses usually match the target's); jitter_seed + score_jitter
  // perturb the ranking per model, which controls speculative-decoding
  // acceptance rates. A smaller model gets a larger jitter.
  uint64_t family_seed = 0;
  uint64_t jitter_seed = 0;
  double score_jitter = 0.25;
  // Per-step chance (permille) that EOS becomes the top candidate; gives
  // generations a natural geometric length distribution.
  uint32_t eos_bias_permille = 15;
  uint32_t vocab_size = 32000;
  uint32_t num_layers = 40;
  uint32_t num_heads = 40;
  uint32_t num_kv_heads = 40;
  uint32_t head_dim = 128;
  uint64_t num_params = 13'000'000'000ULL;
  uint32_t bytes_per_weight = 2;  // fp16
  uint32_t bytes_per_kv_scalar = 2;

  // Bytes of KV cache one token occupies across all layers (K and V).
  uint64_t KvBytesPerToken() const {
    return 2ULL * num_layers * num_kv_heads * head_dim * bytes_per_kv_scalar;
  }

  uint64_t WeightBytes() const { return num_params * bytes_per_weight; }

  // Stable identity of the serving geometry. KV snapshots (src/store) are
  // keyed by (fingerprint, content): caches are only meaningful between
  // replicas serving the same model shape.
  uint64_t Fingerprint() const {
    uint64_t h = Fnv1a(name);
    h = HashCombine(h, vocab_size);
    h = HashCombine(h, num_layers);
    h = HashCombine(h, num_heads);
    h = HashCombine(h, num_kv_heads);
    h = HashCombine(h, head_dim);
    h = HashCombine(h, num_params);
    h = HashCombine(h, bytes_per_kv_scalar);
    return h;
  }

  // Forward-pass FLOPs per token (standard 2 * params approximation).
  double FlopsPerToken() const { return 2.0 * static_cast<double>(num_params); }

  // Paper's evaluation model: Llama-13B-class on an A100.
  static ModelConfig Llama13B() {
    ModelConfig c;
    c.name = "llama-13b";
    c.family_seed = 0x13b13b13bULL;
    c.jitter_seed = 0x7a46e713bULL;
    c.score_jitter = 0.25;
    return c;
  }

  // A 7x smaller draft model for speculative decoding experiments.
  static ModelConfig Llama1BDraft() {
    ModelConfig c;
    c.name = "llama-1b-draft";
    c.family_seed = 0x13b13b13bULL;  // Same family as Llama13B.
    c.jitter_seed = 0xd4af7001bULL;
    c.score_jitter = 0.9;  // Noisier ranking: imperfect draft.
    c.vocab_size = 32000;
    c.num_layers = 16;
    c.num_heads = 16;
    c.num_kv_heads = 16;
    c.head_dim = 64;
    c.num_params = 1'100'000'000ULL;
    return c;
  }

  // Tiny model for unit tests: small vocab so full-distribution checks and
  // constrained decoding over the whole vocabulary stay cheap.
  static ModelConfig Tiny() {
    ModelConfig c;
    c.name = "tiny-test";
    c.family_seed = 0x7e577e57ULL;
    c.jitter_seed = 0x7e57a113ULL;
    c.score_jitter = 0.5;
    c.vocab_size = 300;
    c.num_layers = 2;
    c.num_heads = 2;
    c.num_kv_heads = 2;
    c.head_dim = 8;
    c.num_params = 1'000'000ULL;
    return c;
  }
};

}  // namespace symphony

#endif  // SRC_MODEL_MODEL_CONFIG_H_
