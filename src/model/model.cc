#include "src/model/model.h"

#include "src/common/hash.h"

namespace symphony {

HiddenState Model::InitialState() const {
  return Mix64(config_.family_seed ^ 0x5ee0dULL);
}

HiddenState Model::Advance(HiddenState state, TokenId token, int32_t position) const {
  uint64_t ingredient = static_cast<uint64_t>(static_cast<uint32_t>(token)) |
                        (static_cast<uint64_t>(static_cast<uint32_t>(position)) << 32);
  return HashCombine(state, ingredient);
}

Distribution Model::Predict(HiddenState state) const {
  return Distribution(state, &config_);
}

std::vector<HiddenState> Model::AdvanceSeq(HiddenState state,
                                           const std::vector<TokenId>& tokens,
                                           int32_t first_position) const {
  std::vector<HiddenState> states;
  states.reserve(tokens.size());
  int32_t pos = first_position;
  for (TokenId t : tokens) {
    state = Advance(state, t, pos++);
    states.push_back(state);
  }
  return states;
}

}  // namespace symphony
