// Replayer: re-launches a journaled LIP on a target runtime and drives it
// through replay (see journal.h for the record/replay design).
//
// The cost decision (§ tentpole): rebuilding a recovered LIP's KV cache can
// either re-run every journaled pred on the target device (full prefill
// compute, no transfer) or import the journaled TokenRecords host-side and
// pay PCIe when the next live pred restores them. Choose() compares the two
// using the serving cost model; kAuto resolves to whichever is cheaper for
// the journal's token count.
#ifndef SRC_RECOVERY_REPLAYER_H_
#define SRC_RECOVERY_REPLAYER_H_

#include <functional>
#include <memory>

#include "src/model/cost_model.h"
#include "src/recovery/journal.h"
#include "src/runtime/runtime.h"

namespace symphony {

struct ReplayOutcome {
  LipId lip = kNoLip;             // The relaunched LIP on the target runtime.
  RecoveryMode mode = RecoveryMode::kRecompute;  // kAuto resolved.
  uint64_t journaled_pred_tokens = 0;
};

class Replayer {
 public:
  // Virtual-time estimate of rebuilding `tokens` cached KV tokens by PCIe
  // import (page-granular) vs. by one recompute prefill batch.
  static SimDuration ImportCost(const CostModel& cost, uint64_t tokens);
  static SimDuration RecomputeCost(const CostModel& cost, uint64_t tokens);

  // The cheaper of the two for this token count (never returns kAuto).
  static RecoveryMode Choose(const CostModel& cost, uint64_t tokens);

  // Re-launches the journaled program on `runtime` and begins replay. The
  // journal is adopted by the new LIP (it keeps recording once replay
  // exhausts the log) — pass a copy if the original must stay immutable.
  // `config` is the serving model config, needed to reconstruct
  // Distributions from journaled states in import mode.
  static ReplayOutcome Replay(LipRuntime& runtime, const CostModel& cost,
                              const ModelConfig* config,
                              std::shared_ptr<SyscallJournal> journal,
                              LipProgram program,
                              RecoveryMode mode = RecoveryMode::kAuto,
                              std::function<void(LipId)> on_exit = nullptr);
};

}  // namespace symphony

#endif  // SRC_RECOVERY_REPLAYER_H_
