#include "src/recovery/replayer.h"

#include <cassert>
#include <utility>
#include <vector>

namespace symphony {

SimDuration Replayer::ImportCost(const CostModel& cost, uint64_t tokens) {
  if (tokens == 0) {
    return 0;
  }
  // Transfers are page-granular: a partial tail page moves whole.
  uint64_t pages = (tokens + kPageTokens - 1) / kPageTokens;
  uint64_t bytes = pages * kPageTokens * cost.model().KvBytesPerToken();
  return cost.TransferTime(bytes);
}

SimDuration Replayer::RecomputeCost(const CostModel& cost, uint64_t tokens) {
  if (tokens == 0) {
    return 0;
  }
  // One prefill batch over the whole journaled context. Real replay may
  // split this across the original request boundaries (more kernel launches),
  // so this is a lower bound — which only ever biases the choice toward
  // recompute, the mode the estimate favors less often.
  std::vector<WorkItem> items{{tokens, 0}};
  return cost.BatchTime(items);
}

RecoveryMode Replayer::Choose(const CostModel& cost, uint64_t tokens) {
  if (tokens == 0) {
    return RecoveryMode::kRecompute;  // Nothing to import.
  }
  return ImportCost(cost, tokens) <= RecomputeCost(cost, tokens)
             ? RecoveryMode::kImportSnapshot
             : RecoveryMode::kRecompute;
}

ReplayOutcome Replayer::Replay(LipRuntime& runtime, const CostModel& cost,
                               const ModelConfig* config,
                               std::shared_ptr<SyscallJournal> journal,
                               LipProgram program, RecoveryMode mode,
                               std::function<void(LipId)> on_exit) {
  assert(journal != nullptr);
  ReplayOutcome outcome;
  outcome.journaled_pred_tokens = journal->pred_tokens();
  outcome.mode = mode == RecoveryMode::kAuto
                     ? Choose(cost, journal->pred_tokens())
                     : mode;
  outcome.lip = runtime.LaunchWithSeed(journal->name, journal->rng_seed,
                                       std::move(program), std::move(on_exit));
  if (journal->has_quota) {
    LipQuota quota;
    quota.max_pred_tokens = journal->quota_max_pred_tokens;
    quota.max_tool_calls = journal->quota_max_tool_calls;
    quota.max_threads = journal->quota_max_threads;
    quota.max_kv_pages = journal->quota_max_kv_pages;
    runtime.SetQuota(outcome.lip, quota);
  }
  if (journal->has_deadline) {
    runtime.SetDeadline(outcome.lip, journal->deadline);
  }
  runtime.EnableJournal(outcome.lip, journal);
  Status began = runtime.BeginReplay(outcome.lip, outcome.mode, config);
  assert(began.ok());
  (void)began;
  return outcome;
}

}  // namespace symphony
