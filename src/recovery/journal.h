// Syscall journaling for LIP checkpoint/restore (crash recovery + migration).
//
// A LIP is a deterministic function of its system-call results: given the
// same pred distributions, tool outputs, IPC deliveries, and RNG stream, the
// program makes the same decisions and emits the same output. Symphony never
// serializes a C++ coroutine frame; instead the runtime records, per LIP, an
// ordered per-thread log of completed syscall results. Re-launching the same
// program with (a) the journaled RNG seed and (b) the log fed back at the
// syscall boundary fast-forwards it deterministically to its pre-failure
// point on any replica — the record/replay insight of deterministic
// simulation applied to serving.
//
// What is recorded, and how each class of nondeterminism is replayed:
//   * pred     — entry per completed call: tokens, positions, and the hidden
//                state after each token (the Distribution is reconstructible
//                from state + model config, and the states ARE the KV-file
//                records, i.e. the journal doubles as an incremental
//                KvFileSnapshot of every file the LIP wrote).
//   * tools    — entry per completed call: status + output payload.
//   * sleep    — entry per completed sleep; replay skips the wait.
//   * IPC recv — entry per delivered message; replay re-executes IPC
//                naturally (co-replayed LIPs re-send and re-receive through
//                real channels) and uses the recorded payload only to detect
//                divergence.
//   * RNG      — replayed by reseeding: the journal stores the LIP's rng
//                seed and the program re-draws the identical stream, so
//                individual draws need no log entries.
//   * KV calls — re-executed against the target replica's KVFS; results are
//                deterministic in program order, so re-execution rebuilds
//                handle lineage (and, with it, per-LIP page accounting).
//
// Thread identity across replicas: numeric ThreadIds are allocator-dependent,
// so logs are keyed by the thread's *spawn path* — "0" for the root thread,
// parent.path + "." + k for the k-th thread the parent spawned. The path is
// invariant under replay regardless of interleaving.
//
// Determinism contract: replay guarantees bit-identical output for programs
// that are data-race-free under the LIP memory model — cross-thread effects
// (emit order, shared KV writes, multi-consumer channels) must be ordered by
// program order or synchronization (join / recv / kv_lock). Programs that
// branch on wall-clock virtual time (ctx.now()) are outside the contract.
//
// Open item (ROADMAP): journals grow with the LIP; incremental truncation
// after a durable KV checkpoint would bound them.
#ifndef SRC_RECOVERY_JOURNAL_H_
#define SRC_RECOVERY_JOURNAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/types.h"
#include "src/model/tokenizer.h"
#include "src/sim/time.h"

namespace symphony {

// How a journaled LIP's KV state is rebuilt on the target replica.
enum class RecoveryMode {
  // Pick kImportSnapshot or kRecompute per LIP, whichever the cost model
  // says is cheaper for its journaled token count.
  kAuto,
  // Re-run every journaled pred on the target device: pays the full prefill
  // compute again, needs no KV transfer.
  kRecompute,
  // Feed pred results from the journal and import the journaled TokenRecords
  // into the KV file on the host tier (a KvFileSnapshot import); the next
  // live pred restores them on-device, paying only PCIe.
  kImportSnapshot,
};

inline const char* RecoveryModeName(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kAuto:
      return "auto";
    case RecoveryMode::kRecompute:
      return "recompute";
    case RecoveryMode::kImportSnapshot:
      return "import";
  }
  return "?";
}

struct JournalEntry {
  enum class Kind : uint8_t { kPred, kTool, kSleep, kRecv };
  Kind kind = Kind::kPred;
  Status status;  // Completion status (pred and tool entries).

  // kPred: the request and the resulting per-token hidden states. states[i]
  // is the state after consuming tokens[i]; together with tokens/positions
  // these are exactly the TokenRecords the executor appended.
  std::vector<TokenId> tokens;
  std::vector<int32_t> positions;
  std::vector<uint64_t> states;

  // kTool: output payload. kRecv: the delivered message.
  std::string payload;

  // kSleep: requested duration (alignment check only; replay skips it).
  SimDuration duration = 0;
};

// Per-LIP journal. Owned jointly by the serving layer (which keeps it across
// the LIP's death) and the runtime (which appends to it); copy the journal
// before handing it to a replay so the original stays a consistent record.
class SyscallJournal {
 public:
  // ---- Launch metadata (everything needed to re-launch the LIP) ---------
  std::string name;
  uint64_t rng_seed = 0;
  // Quota captured at SetQuota time so a replayed LIP resumes under the same
  // limits (usage itself is rebuilt by re-execution — see runtime.cc).
  bool has_quota = false;
  uint64_t quota_max_pred_tokens = UINT64_MAX;
  uint64_t quota_max_tool_calls = UINT64_MAX;
  uint32_t quota_max_threads = UINT32_MAX;
  uint64_t quota_max_kv_pages = UINT64_MAX;
  // Absolute deadline captured at SetDeadline time: recovery re-arms it so a
  // replayed LIP cannot outlive the budget its original admission granted.
  // (Replay itself is exempt from rejection while the log serves — see
  // LipRuntime::SetDeadline.)
  bool has_deadline = false;
  SimTime deadline = 0;

  // ---- The log ----------------------------------------------------------

  const std::unordered_map<std::string, std::vector<JournalEntry>>& threads()
      const {
    return threads_;
  }

  void Append(const std::string& thread_path, JournalEntry entry) {
    if (entry.kind == JournalEntry::Kind::kPred) {
      pred_tokens_ += entry.tokens.size();
    }
    ++total_entries_;
    threads_[thread_path].push_back(std::move(entry));
  }

  // Entry at `index` within `thread_path`'s log, or nullptr past the end.
  const JournalEntry* At(const std::string& thread_path, size_t index) const {
    auto it = threads_.find(thread_path);
    if (it == threads_.end() || index >= it->second.size()) {
      return nullptr;
    }
    return &it->second[index];
  }

  size_t EntryCount(const std::string& thread_path) const {
    auto it = threads_.find(thread_path);
    return it == threads_.end() ? 0 : it->second.size();
  }

  uint64_t total_entries() const { return total_entries_; }

  // Tokens across all journaled preds: the "cached tokens" a recovery must
  // rebuild, and the input to the recompute-vs-import cost decision.
  uint64_t pred_tokens() const { return pred_tokens_; }

 private:
  std::unordered_map<std::string, std::vector<JournalEntry>> threads_;
  uint64_t total_entries_ = 0;
  uint64_t pred_tokens_ = 0;
};

}  // namespace symphony

#endif  // SRC_RECOVERY_JOURNAL_H_
