// Syscall journaling for LIP checkpoint/restore (crash recovery + migration).
//
// A LIP is a deterministic function of its system-call results: given the
// same pred distributions, tool outputs, IPC deliveries, and RNG stream, the
// program makes the same decisions and emits the same output. Symphony never
// serializes a C++ coroutine frame; instead the runtime records, per LIP, an
// ordered per-thread log of completed syscall results. Re-launching the same
// program with (a) the journaled RNG seed and (b) the log fed back at the
// syscall boundary fast-forwards it deterministically to its pre-failure
// point on any replica — the record/replay insight of deterministic
// simulation applied to serving.
//
// What is recorded, and how each class of nondeterminism is replayed:
//   * pred     — entry per completed call: tokens, positions, and the hidden
//                state after each token (the Distribution is reconstructible
//                from state + model config, and the states ARE the KV-file
//                records, i.e. the journal doubles as an incremental
//                KvFileSnapshot of every file the LIP wrote).
//   * tools    — entry per completed call: status + output payload.
//   * sleep    — entry per completed sleep; replay skips the wait.
//   * IPC recv — entry per delivered message (channel + per-channel receive
//                ordinal + payload). Two disciplines, chosen by whether a
//                cluster IPC fabric (src/net) is attached:
//                  - standalone runtime: replay re-executes IPC naturally
//                    (co-replayed LIPs re-send and re-receive through real
//                    channels) and uses the recorded payload only to detect
//                    divergence;
//                  - cluster fabric: recv is served verbatim from the journal
//                    (same discipline as tool results), so ONE endpoint of a
//                    cross-replica pair can be killed and replayed while the
//                    other keeps running live.
//   * IPC send — fabric mode only: entry per send (channel + payload).
//                Replay consumes and SUPPRESSES the send — the original
//                message already reached (or is queued for) the peer, and
//                re-sending would duplicate it. Standalone replay has no
//                kSend entries and re-sends through real channels.
//   * IPC credit wait — fabric mode only: when a send blocked on channel
//                credits, an entry (channel + grant ordinal) is appended at
//                the moment the fabric granted the credit, immediately
//                before the kSend entry. Replay consumes the pair without
//                re-parking; the grant ordinal re-parks any FOLLOWING live
//                blocked send at its original position in the channel's
//                sender FIFO, so blocked-sender wakeup order is bit-identical
//                (the same discipline as kRecv resume ordinals).
//   * RNG      — replayed by reseeding: the journal stores the LIP's rng
//                seed and the program re-draws the identical stream, so
//                individual draws need no log entries.
//   * KV calls — re-executed against the target replica's KVFS; results are
//                deterministic in program order, so re-execution rebuilds
//                handle lineage (and, with it, per-LIP page accounting).
//
// Thread identity across replicas: numeric ThreadIds are allocator-dependent,
// so logs are keyed by the thread's *spawn path* — "0" for the root thread,
// parent.path + "." + k for the k-th thread the parent spawned. The path is
// invariant under replay regardless of interleaving.
//
// Determinism contract: replay guarantees bit-identical output for programs
// that are data-race-free under the LIP memory model — cross-thread effects
// (emit order, shared KV writes, multi-consumer channels) must be ordered by
// program order or synchronization (join / recv / kv_lock). Programs that
// branch on wall-clock virtual time (ctx.now()) are outside the contract.
//
// Checkpoint truncation (src/store): long-lived LIPs would otherwise grow
// their journal without bound, so the cluster can install a fold hook that
// periodically serializes the whole log into the content-addressed snapshot
// store and truncates the folded prefix from memory. Indices stay LOGICAL:
// At/EntryCount/total_entries keep counting from the beginning of time, and
// a folded index answers nullptr from At (FoldedAt distinguishes "truncated"
// from "past the end"). A journal with a folded prefix must be rehydrated
// from the store (store/journal_checkpoint.h) before it can drive a replay.
#ifndef SRC_RECOVERY_JOURNAL_H_
#define SRC_RECOVERY_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/kvfs/types.h"
#include "src/model/tokenizer.h"
#include "src/sim/time.h"

namespace symphony {

// How a journaled LIP's KV state is rebuilt on the target replica.
enum class RecoveryMode {
  // Pick kImportSnapshot or kRecompute per LIP, whichever the cost model
  // says is cheaper for its journaled token count.
  kAuto,
  // Re-run every journaled pred on the target device: pays the full prefill
  // compute again, needs no KV transfer.
  kRecompute,
  // Feed pred results from the journal and import the journaled TokenRecords
  // into the KV file on the host tier (a KvFileSnapshot import); the next
  // live pred restores them on-device, paying only PCIe.
  kImportSnapshot,
};

inline const char* RecoveryModeName(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kAuto:
      return "auto";
    case RecoveryMode::kRecompute:
      return "recompute";
    case RecoveryMode::kImportSnapshot:
      return "import";
  }
  return "?";
}

struct JournalEntry {
  enum class Kind : uint8_t { kPred, kTool, kSleep, kRecv, kSend, kCreditWait };
  Kind kind = Kind::kPred;
  Status status;  // Completion status (pred and tool entries).

  // kPred: the request and the resulting per-token hidden states. states[i]
  // is the state after consuming tokens[i]; together with tokens/positions
  // these are exactly the TokenRecords the executor appended.
  std::vector<TokenId> tokens;
  std::vector<int32_t> positions;
  std::vector<uint64_t> states;

  // kTool: output payload. kRecv/kSend: the message.
  std::string payload;

  // kSleep: requested duration (alignment check only; replay skips it).
  SimDuration duration = 0;

  // kRecv/kSend/kCreditWait: the channel name. kRecv records the channel's
  // delivery ordinal at the time (observability — the fabric's counters are
  // not rewound by replay, so the ordinal is never divergence-checked);
  // kCreditWait records the channel's credit GRANT ordinal, which replay
  // uses to re-park subsequent live blocked sends at their original FIFO
  // position.
  std::string channel;
  uint64_t ordinal = 0;
};

// Per-LIP journal. Owned jointly by the serving layer (which keeps it across
// the LIP's death) and the runtime (which appends to it); copy the journal
// before handing it to a replay so the original stays a consistent record.
class SyscallJournal {
 public:
  // ---- Launch metadata (everything needed to re-launch the LIP) ---------
  std::string name;
  uint64_t rng_seed = 0;
  // Quota captured at SetQuota time so a replayed LIP resumes under the same
  // limits (usage itself is rebuilt by re-execution — see runtime.cc).
  bool has_quota = false;
  uint64_t quota_max_pred_tokens = UINT64_MAX;
  uint64_t quota_max_tool_calls = UINT64_MAX;
  uint32_t quota_max_threads = UINT32_MAX;
  uint64_t quota_max_kv_pages = UINT64_MAX;
  // Absolute deadline captured at SetDeadline time: recovery re-arms it so a
  // replayed LIP cannot outlive the budget its original admission granted.
  // (Replay itself is exempt from rejection while the log serves — see
  // LipRuntime::SetDeadline.)
  bool has_deadline = false;
  SimTime deadline = 0;

  // ---- The log ----------------------------------------------------------

  // Per-thread log: `folded` entries have been truncated into the checkpoint
  // snapshot; `live` holds everything since. Logical index i maps to
  // live[i - folded].
  struct ThreadLog {
    uint64_t folded = 0;
    std::vector<JournalEntry> live;
  };

  const std::unordered_map<std::string, ThreadLog>& threads() const {
    return threads_;
  }

  void Append(const std::string& thread_path, JournalEntry entry) {
    if (entry.kind == JournalEntry::Kind::kPred) {
      pred_tokens_ += entry.tokens.size();
    }
    ++total_entries_;
    threads_[thread_path].live.push_back(std::move(entry));
    MaybeFold();
  }

  // Entry at LOGICAL `index` within `thread_path`'s log; nullptr past the
  // end — and for folded indices, which FoldedAt tells apart.
  const JournalEntry* At(const std::string& thread_path, size_t index) const {
    auto it = threads_.find(thread_path);
    if (it == threads_.end() || index < it->second.folded) {
      return nullptr;
    }
    size_t offset = index - it->second.folded;
    return offset < it->second.live.size() ? &it->second.live[offset] : nullptr;
  }

  // True when `index` was truncated into the checkpoint: its entry is in the
  // snapshot store, not in memory.
  bool FoldedAt(const std::string& thread_path, size_t index) const {
    auto it = threads_.find(thread_path);
    return it != threads_.end() && index < it->second.folded;
  }

  // Logical entry count (folded prefix included).
  size_t EntryCount(const std::string& thread_path) const {
    auto it = threads_.find(thread_path);
    return it == threads_.end() ? 0
                                : it->second.folded + it->second.live.size();
  }

  uint64_t total_entries() const { return total_entries_; }

  // Tokens across all journaled preds: the "cached tokens" a recovery must
  // rebuild, and the input to the recompute-vs-import cost decision.
  uint64_t pred_tokens() const { return pred_tokens_; }

  // ---- Checkpoint truncation (src/store) --------------------------------

  // Entries resident in memory / truncated into the checkpoint.
  uint64_t folded_entries() const { return folded_entries_; }
  uint64_t live_entries() const { return total_entries_ - folded_entries_; }

  // Snapshot-store manifest key holding the folded prefix; 0 = none. The
  // journal owns one store reference to it (released when the LIP completes
  // or the next fold supersedes it).
  uint64_t checkpoint_key() const { return checkpoint_key_; }

  // Fold hook, installed by the serving layer: called from Append once
  // live_entries() reaches `interval`, with this journal as argument. The
  // hook is expected to publish the serialized log to the snapshot store and
  // call FoldPrefix; a hook that fails and does neither simply leaves the
  // journal fatter until the next interval crossing.
  using FoldHook = std::function<void(SyscallJournal&)>;
  void set_fold_hook(FoldHook hook, uint64_t interval) {
    fold_hook_ = std::move(hook);
    fold_interval_ = interval;
  }

  // Truncates every live entry into checkpoint `key` (the caller has already
  // published the serialized prefix covering them).
  void FoldPrefix(uint64_t key) {
    for (auto& entry : threads_) {
      ThreadLog& log = entry.second;
      log.folded += log.live.size();
      folded_entries_ += log.live.size();
      log.live.clear();
    }
    checkpoint_key_ = key;
  }

  // Reinstates the folded prefix of one thread from deserialized entries
  // (rehydration before replay). `prefix` must hold exactly the folded count.
  Status ReinstatePrefix(const std::string& thread_path,
                         std::vector<JournalEntry> prefix) {
    auto it = threads_.find(thread_path);
    if (it == threads_.end()) {
      return NotFoundError("no journaled thread " + thread_path);
    }
    ThreadLog& log = it->second;
    if (prefix.size() != log.folded) {
      return InternalError("checkpoint prefix length mismatch for thread " +
                           thread_path);
    }
    for (JournalEntry& entry : log.live) {
      prefix.push_back(std::move(entry));
    }
    log.live = std::move(prefix);
    folded_entries_ -= log.folded;
    log.folded = 0;
    return Status::Ok();
  }

  // Drops the checkpoint reference without releasing it: ownership moved to
  // another journal object (the replay copy made by ReplayOnto).
  void AbandonCheckpoint() { checkpoint_key_ = 0; }

 private:
  void MaybeFold() {
    if (!fold_hook_ || folding_ || fold_interval_ == 0 ||
        live_entries() < fold_interval_) {
      return;
    }
    folding_ = true;
    fold_hook_(*this);
    folding_ = false;
  }

  std::unordered_map<std::string, ThreadLog> threads_;
  uint64_t total_entries_ = 0;
  uint64_t pred_tokens_ = 0;
  uint64_t folded_entries_ = 0;
  uint64_t checkpoint_key_ = 0;
  FoldHook fold_hook_;
  uint64_t fold_interval_ = 0;
  bool folding_ = false;
};

}  // namespace symphony

#endif  // SRC_RECOVERY_JOURNAL_H_
