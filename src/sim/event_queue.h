// Discrete-event simulation core.
//
// Simulator owns the virtual clock and a time-ordered queue of callbacks.
// Components schedule work with ScheduleAt/ScheduleAfter; Run() dispatches
// events in (time, insertion order) until the queue drains or a deadline is
// hit. Ties break by insertion order, which makes runs fully deterministic.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace symphony {

class Simulator {
 public:
  using EventFn = std::function<void()>;
  using EventId = uint64_t;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute virtual time `when`. Times in the past run at
  // the current time (never rewinds the clock). Returns an id usable with
  // Cancel().
  EventId ScheduleAt(SimTime when, EventFn fn);
  EventId ScheduleAfter(SimDuration delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Best-effort cancellation: the event is skipped when dequeued. Returns
  // true if the event was still pending.
  bool Cancel(EventId id);

  // Dispatches events until the queue is empty. Returns number dispatched.
  uint64_t Run();

  // Dispatches events with time <= deadline; the clock ends at
  // max(now, deadline). Returns number dispatched.
  uint64_t RunUntil(SimTime deadline);

  // Dispatches a single event if available. Returns false if queue empty.
  bool Step();

  bool empty() const { return pending_count_ == 0; }
  size_t pending_count() const { return pending_count_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // Tie-break: FIFO among same-time events.
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  bool Dispatch(Event& event);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t pending_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace symphony

#endif  // SRC_SIM_EVENT_QUEUE_H_
