#include "src/sim/trace.h"

#include <cstdio>

namespace symphony {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string Escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double ToMicros(SimTime t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

uint32_t TraceRecorder::TrackId(const std::string& track) {
  for (uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == track) {
      return i;
    }
  }
  tracks_.push_back(track);
  return static_cast<uint32_t>(tracks_.size()) - 1;
}

void TraceRecorder::Span(std::string track, std::string name, SimTime start,
                         SimDuration duration) {
  events_.push_back(Event{'X', std::move(track), std::move(name), start,
                          duration, 0.0});
}

void TraceRecorder::Instant(std::string track, std::string name, SimTime at) {
  events_.push_back(Event{'i', std::move(track), std::move(name), at, 0, 0.0});
}

void TraceRecorder::Counter(std::string name, SimTime at, double value) {
  events_.push_back(Event{'C', "counters", std::move(name), at, 0, value});
}

std::string TraceRecorder::ToChromeJson() const {
  // Track ids must be stable; rebuild the mapping deterministically.
  TraceRecorder* self = const_cast<TraceRecorder*>(this);
  std::string out = "{\"traceEvents\":[\n";
  char buffer[256];
  bool first = true;
  for (const Event& event : events_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    uint32_t tid = self->TrackId(event.track);
    switch (event.phase) {
      case 'X':
        std::snprintf(buffer, sizeof(buffer),
                      "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                      "\"dur\":%.3f,\"name\":\"%s\"}",
                      tid, ToMicros(event.start), ToMicros(event.duration),
                      Escape(event.name).c_str());
        break;
      case 'i':
        std::snprintf(buffer, sizeof(buffer),
                      "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                      "\"s\":\"t\",\"name\":\"%s\"}",
                      tid, ToMicros(event.start), Escape(event.name).c_str());
        break;
      case 'C':
        std::snprintf(buffer, sizeof(buffer),
                      "{\"ph\":\"C\",\"pid\":1,\"ts\":%.3f,\"name\":\"%s\","
                      "\"args\":{\"value\":%.3f}}",
                      ToMicros(event.start), Escape(event.name).c_str(),
                      event.value);
        break;
      default:
        continue;
    }
    out += buffer;
  }
  out += "\n],\n\"metadata\":{";
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    std::snprintf(buffer, sizeof(buffer), "\"track_%zu\":\"%s\"", i,
                  Escape(tracks_[i]).c_str());
    out += buffer;
  }
  out += "}}\n";
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open trace file: " + path);
  }
  std::string json = ToChromeJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return UnavailableError("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace symphony
