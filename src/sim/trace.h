// Execution tracing in Chrome trace-event format.
//
// Components emit spans (virtual-time intervals on named tracks) and instant
// markers into a TraceRecorder; WriteChromeJson produces a file loadable in
// chrome://tracing or https://ui.perfetto.dev. The serving layer wires the
// recorder into the device (one span per batch, per transfer) and the LIP
// runtime (one span per LIP lifetime, markers for tool calls), giving the
// paper's "what is the GPU doing and who is waiting" view for free.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/time.h"

namespace symphony {

class TraceRecorder {
 public:
  // A completed span of virtual time on `track` (rendered as a Chrome
  // trace "X" event; track maps to tid).
  void Span(std::string track, std::string name, SimTime start,
            SimDuration duration);

  // A zero-duration marker.
  void Instant(std::string track, std::string name, SimTime at);

  // A counter sample (rendered as a Chrome "C" event).
  void Counter(std::string name, SimTime at, double value);

  size_t event_count() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // Serializes all events; timestamps are microseconds of virtual time.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X' span, 'i' instant, 'C' counter.
    std::string track;
    std::string name;
    SimTime start;
    SimDuration duration;
    double value;
  };
  // Stable small integer per track name (Chrome tid).
  uint32_t TrackId(const std::string& track);

  std::vector<Event> events_;
  std::vector<std::string> tracks_;
};

}  // namespace symphony

#endif  // SRC_SIM_TRACE_H_
