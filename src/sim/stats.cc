#include "src/sim/stats.h"

namespace symphony {

double SampleSeries::Percentile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) {
    return samples_.front();
  }
  if (q >= 1.0) {
    return samples_.back();
  }
  double rank = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void SampleSeries::Reset() {
  samples_.clear();
  sorted_ = false;
  stats_.Reset();
}

}  // namespace symphony
