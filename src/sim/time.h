// Virtual time for the discrete-event simulator.
//
// Time is an integer count of nanoseconds since simulation start. Integer time
// keeps event ordering exact and replayable; helpers convert to and from
// floating-point seconds at the edges (cost models, statistics).
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cmath>
#include <cstdint>

namespace symphony {

using SimTime = int64_t;      // Absolute virtual time, ns.
using SimDuration = int64_t;  // Virtual duration, ns.

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Nanos(int64_t n) { return n; }
constexpr SimDuration Micros(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }

// Converts a (possibly fractional) second count, rounding to nearest ns.
inline SimDuration DurationFromSeconds(double seconds) {
  return static_cast<SimDuration>(std::llround(seconds * static_cast<double>(kSecond)));
}

inline double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

inline double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace symphony

#endif  // SRC_SIM_TIME_H_
