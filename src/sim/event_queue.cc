#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace symphony {

Simulator::EventId Simulator::ScheduleAt(SimTime when, EventFn fn) {
  assert(fn && "scheduling a null event");
  if (when < now_) {
    when = now_;
  }
  EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  ++pending_count_;
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return false;
  }
  // Double-cancel and cancel-after-dispatch both return false via the insert
  // result only when the id is still live; we cannot distinguish a dispatched
  // event cheaply, so callers should treat the return as advisory.
  return cancelled_.insert(id).second;
}

bool Simulator::Dispatch(Event& event) {
  now_ = event.when;
  if (!cancelled_.empty() && cancelled_.erase(event.id) > 0) {
    return false;
  }
  EventFn fn = std::move(event.fn);
  fn();
  return true;
}

uint64_t Simulator::Run() {
  uint64_t dispatched = 0;
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --pending_count_;
    if (Dispatch(event)) {
      ++dispatched;
    }
  }
  return dispatched;
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  uint64_t dispatched = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --pending_count_;
    if (Dispatch(event)) {
      ++dispatched;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return dispatched;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --pending_count_;
    if (Dispatch(event)) {
      return true;
    }
  }
  return false;
}

}  // namespace symphony
