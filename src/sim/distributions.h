// Stochastic processes used by workload generators and schedulers.
//
// PoissonProcess: memoryless request arrivals (the paper's load model).
// ParetoCatalog: discrete item popularity whose rank-frequency law derives
// from a Pareto index alpha. If item "sizes" are Pareto(alpha)-distributed,
// the induced rank-frequency distribution is Zipf with exponent 1/alpha, so a
// SMALL Pareto index means a FEW very popular items — matching §5's reading
// ("Symphony outperforms ... when the Pareto index is small, i.e., when a few
// topics are queried frequently").
#ifndef SRC_SIM_DISTRIBUTIONS_H_
#define SRC_SIM_DISTRIBUTIONS_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace symphony {

// Homogeneous Poisson arrival process with the given mean rate (per second).
class PoissonProcess {
 public:
  PoissonProcess(double rate_per_sec, uint64_t seed)
      : rate_(rate_per_sec), rng_(seed) {
    assert(rate_per_sec > 0.0);
  }

  // Draws the next interarrival gap.
  SimDuration NextGap() {
    return DurationFromSeconds(rng_.NextExponential(rate_));
  }

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
};

// Popularity over items {0..n-1}: weight(rank r) ∝ (r+1)^(-1/alpha).
// Item 0 is the most popular. Sampling is CDF binary search.
class ParetoCatalog {
 public:
  ParetoCatalog(size_t n, double pareto_index, uint64_t seed)
      : rng_(seed), cdf_(n) {
    assert(n > 0);
    assert(pareto_index > 0.0);
    double s = 1.0 / pareto_index;  // Zipf exponent induced by Pareto(alpha).
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += std::pow(static_cast<double>(r + 1), -s);
      cdf_[r] = total;
    }
    for (double& c : cdf_) {
      c /= total;
    }
  }

  size_t size() const { return cdf_.size(); }

  // Probability mass of the item at `rank`.
  double Mass(size_t rank) const {
    assert(rank < cdf_.size());
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

  // Samples an item rank.
  size_t Next() {
    double u = rng_.NextDouble();
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace symphony

#endif  // SRC_SIM_DISTRIBUTIONS_H_
