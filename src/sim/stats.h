// Online statistics for simulation metrics.
//
// OnlineStats: numerically stable streaming mean/variance (Welford).
// SampleSeries: stores all samples for exact percentiles — simulation runs
// are bounded (<1e7 samples), so exactness beats sketching here.
// Counter/Gauge: trivial named metrics used by server metric registries.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace symphony {

class OnlineStats {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void Reset() { *this = OnlineStats(); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Retains every sample; provides exact order statistics.
class SampleSeries {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    stats_.Add(x);
  }

  uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double sum() const { return stats_.sum(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double stddev() const { return stats_.stddev(); }

  // Exact percentile by nearest-rank with linear interpolation. q in [0,1].
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }

  const std::vector<double>& samples() const { return samples_; }
  void Reset();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  OnlineStats stats_;
};

}  // namespace symphony

#endif  // SRC_SIM_STATS_H_
