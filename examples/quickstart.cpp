// Quickstart: the paper's Figure 2 program.
//
// A LIP loads a precomputed "system message" KV file, then spawns one thread
// per query. Each thread forks the prefix KV (copy-on-write, no tensor
// copies), feeds its own suffix, and runs its own autoregressive loop with
// the distributions pred returns — the generation loop lives in the program,
// not in the serving system.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "src/serve/server.h"

using namespace symphony;

int main() {
  Simulator sim;
  ServerOptions options;
  options.model = ModelConfig::Llama13B();
  SymphonyServer server(&sim, options);

  LipId lip = server.Launch("figure2", [&](LipContext& ctx) -> Task {
    // Precompute the shared system-message KV (in the paper this file
    // already exists: kv_open("sys_msg.kv")).
    KvHandle prefix_kv = *ctx.kv_create("/kv/sys_msg", kModeShared);
    std::vector<TokenId> sys_msg =
        ctx.tokenizer().Encode("w1 w2 w3 w4 w5 w6 w7 w8 w9 w10 w11 w12");
    (void)co_await ctx.pred(prefix_kv, sys_msg);

    std::vector<std::string> queries = {"w100 w101", "w200 w201", "w300 w301"};
    for (size_t q = 0; q < queries.size(); ++q) {
      std::string query = queries[q];
      ctx.spawn([&, q, query](LipContext& inner) -> Task {
        // fork prefix kv and generate until EOS (or a length cap).
        StatusOr<KvHandle> kv = inner.kv_fork(prefix_kv);
        if (!kv.ok()) {
          co_return;
        }
        std::vector<TokenId> suffix = inner.tokenizer().Encode(query);
        StatusOr<std::vector<Distribution>> dists = co_await inner.pred(*kv, suffix);
        if (!dists.ok()) {
          co_return;
        }
        std::string answer;
        TokenId t = dists->back().Argmax();
        for (int step = 0; step < 24 && t != kEosToken; ++step) {
          answer += inner.tokenizer().TokenToString(t) + " ";
          StatusOr<std::vector<Distribution>> d = co_await inner.pred1(*kv, t);
          if (!d.ok()) {
            break;
          }
          t = d->back().Argmax();
        }
        inner.emit("query " + std::to_string(q) + " [" + query + "] -> " + answer + "\n");
        (void)inner.kv_close(*kv);  // kv_remove(kv) in the paper's listing.
        co_return;
      });
    }
    co_await ctx.join_all();
    (void)ctx.kv_close(prefix_kv);
    co_return;
  });

  sim.Run();

  // The LIP's emitted output, plus a look at what the KV sharing saved.
  std::printf("%s", server.runtime().Output(lip).c_str());
  const PagePoolStats& pool = server.kvfs().pool().stats();
  std::printf("\nvirtual time: %.2f s, batches: %lu, COW page copies: %lu\n",
              ToSeconds(sim.now()),
              static_cast<unsigned long>(server.device().stats().batches),
              static_cast<unsigned long>(pool.cow_copies));
  return 0;
}
