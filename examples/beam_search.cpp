// Beam search and best-of-N via the LIP standard library (src/liplib).
//
// Advanced decoding strategies are just library code on top of the LIP
// system-call surface: beams are KV forks, expansions are parallel threads
// whose preds the scheduler fuses into shared GPU batches, and reranking
// uses the model's own log-probabilities. Compare the likelihoods the three
// strategies achieve for the same prompt and budget.
//
// Build & run:  ./build/examples/beam_search
#include <cstdio>
#include <string>
#include <vector>

#include "src/liplib/beam.h"
#include "src/liplib/generation.h"
#include "src/serve/server.h"

using namespace symphony;

int main() {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});

  struct Row {
    std::string name;
    double mean_logprob = 0.0;
    size_t tokens = 0;
    double seconds = 0.0;
  };
  std::vector<Row> rows;

  server.Launch("decoding-strategies", [&](LipContext& ctx) -> Task {
    std::vector<TokenId> prompt = ctx.tokenizer().Encode("w10 w20 w30 w40");
    constexpr uint32_t kBudget = 12;

    {
      SimTime start = ctx.now();
      KvHandle kv = *ctx.kv_tmp();
      GenOptions options;
      options.sampler.temperature = 0.0;
      options.max_new_tokens = kBudget;
      options.stop_at_eos = false;
      GenResult r = co_await Generate(ctx, kv, prompt, options);
      if (r.ok()) {
        rows.push_back(Row{"greedy",
                           r.sum_logprob / static_cast<double>(r.tokens.size()),
                           r.tokens.size(), ToSeconds(ctx.now() - start)});
      }
    }
    {
      SimTime start = ctx.now();
      KvHandle base = *ctx.kv_tmp();
      GenOptions options;
      options.sampler.temperature = 1.0;
      options.max_new_tokens = kBudget;
      options.stop_at_eos = false;
      GenResult r = co_await BestOfN(ctx, base, prompt, 8, options);
      if (r.ok()) {
        rows.push_back(Row{"best-of-8",
                           r.sum_logprob / static_cast<double>(r.tokens.size()),
                           r.tokens.size(), ToSeconds(ctx.now() - start)});
      }
    }
    {
      SimTime start = ctx.now();
      KvHandle base = *ctx.kv_tmp();
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred(base, prompt);
      if (d.ok()) {
        BeamOptions options;
        options.width = 8;
        options.max_steps = static_cast<int>(kBudget);
        BeamResult r = co_await BeamSearch(ctx, base, d->back(), options);
        if (r.ok()) {
          rows.push_back(Row{"beam-8", r.MeanLogprob(), r.tokens.size(),
                             ToSeconds(ctx.now() - start)});
        }
      }
    }
    co_return;
  });
  sim.Run();

  std::printf("strategy   mean_logprob  tokens  virtual_s\n");
  std::printf("---------  ------------  ------  ---------\n");
  for (const auto& row : rows) {
    std::printf("%-9s  %12.3f  %6zu  %9.2f\n", row.name.c_str(),
                row.mean_logprob, row.tokens, row.seconds);
  }
  std::printf("\nhigher mean_logprob = the model considers the sequence more "
              "likely; search buys likelihood with compute\n");
  return 0;
}
