// Watermarked generation as a LIP (paper §2.3, citing Kirchenbauer et al.).
//
// A stateful sampling strategy no prompt API exposes: each step biases
// sampling toward a pseudo-random "green list" seeded by the previous token.
// The LIP below generates watermarked and plain text from the same prompt;
// the detector (which knows the salt) then tells them apart by z-score.
//
// Build & run:  ./build/examples/watermark
#include <cstdio>
#include <vector>

#include "src/decode/watermark.h"
#include "src/serve/server.h"

using namespace symphony;

int main() {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  WatermarkConfig wm;

  std::vector<TokenId> watermarked;
  std::vector<TokenId> plain;

  server.Launch("watermark", [&](LipContext& ctx) -> Task {
    std::vector<TokenId> prompt = ctx.tokenizer().Encode("w50 w51 w52");
    constexpr int kTokens = 220;
    Watermarker watermarker(wm);

    // Watermarked stream.
    {
      KvHandle kv = *ctx.kv_tmp();
      StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, prompt);
      if (!d0.ok()) {
        co_return;
      }
      Distribution dist = d0->back();
      TokenId prev = prompt.back();
      for (int i = 0; i < kTokens; ++i) {
        TokenId t = watermarker.Sample(dist, prev, ctx.uniform(), ctx.uniform());
        watermarked.push_back(t);
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
        if (!d.ok()) {
          co_return;
        }
        dist = d->back();
        prev = t;
      }
    }
    // Plain stream from the same prompt.
    {
      KvHandle kv = *ctx.kv_tmp();
      StatusOr<std::vector<Distribution>> d0 = co_await ctx.pred(kv, prompt);
      if (!d0.ok()) {
        co_return;
      }
      Distribution dist = d0->back();
      for (int i = 0; i < kTokens; ++i) {
        TokenId t = dist.Sample(ctx.uniform());
        plain.push_back(t);
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
        if (!d.ok()) {
          co_return;
        }
        dist = d->back();
      }
    }
    co_return;
  });
  sim.Run();

  WatermarkVerdict wm_verdict = DetectWatermark(watermarked, wm);
  WatermarkVerdict plain_verdict = DetectWatermark(plain, wm);
  WatermarkConfig wrong_salt = wm;
  wrong_salt.salt ^= 0x5a5a5a5aULL;
  WatermarkVerdict wrong_verdict = DetectWatermark(watermarked, wrong_salt);

  std::printf("stream        tokens  green  z-score  detected\n");
  std::printf("------------  ------  -----  -------  --------\n");
  std::printf("watermarked   %6lu  %5lu  %7.2f  %s\n",
              static_cast<unsigned long>(wm_verdict.total),
              static_cast<unsigned long>(wm_verdict.green), wm_verdict.z_score,
              wm_verdict.watermarked ? "YES" : "no");
  std::printf("plain         %6lu  %5lu  %7.2f  %s\n",
              static_cast<unsigned long>(plain_verdict.total),
              static_cast<unsigned long>(plain_verdict.green),
              plain_verdict.z_score, plain_verdict.watermarked ? "YES" : "no");
  std::printf("wrong salt    %6lu  %5lu  %7.2f  %s\n",
              static_cast<unsigned long>(wrong_verdict.total),
              static_cast<unsigned long>(wrong_verdict.green),
              wrong_verdict.z_score, wrong_verdict.watermarked ? "YES" : "no");
  return 0;
}
