// RAG with application-managed prompt caching — the paper's §5 scenario in
// miniature. A stream of requests asks about topics with skewed popularity;
// each request is a LIP that forks a named KV file when the topic is cached
// and prefills + publishes it when not. Watch per-request latency collapse
// once popular topics are cached.
//
// Build & run:  ./build/examples/rag_cache
#include <cstdio>
#include <string>
#include <vector>

#include "src/serve/server.h"
#include "src/sim/distributions.h"
#include "src/workload/rag.h"

using namespace symphony;

int main() {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});

  RagConfig config;
  config.num_docs = 8;
  config.doc_tokens = 1500;
  config.query_tokens = 12;
  config.answer_tokens = 16;
  config.cache_top_k = 3;
  RagCorpus corpus(config, server.options().model.vocab_size);
  ParetoCatalog popularity(config.num_docs, /*pareto_index=*/0.4, /*seed=*/7);

  struct Outcome {
    size_t topic = 0;
    bool hit = false;
    SimTime start = 0;
    SimTime end = 0;
  };
  std::vector<Outcome> outcomes(12);

  SimTime when = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    when += Millis(400);
    size_t topic = popularity.Next();
    sim.ScheduleAt(when, [&, i, topic] {
      outcomes[i].topic = topic;
      outcomes[i].start = sim.now();
      server.Launch(
          "rag-" + std::to_string(i),
          [&, i, topic](LipContext& ctx) -> Task {
            std::string path = "/cache/doc_" + std::to_string(topic);
            KvHandle kv{};
            if (ctx.kv_exists(path)) {
              StatusOr<KvHandle> shared = ctx.kv_open(path);
              if (shared.ok()) {
                StatusOr<KvHandle> fork = ctx.kv_fork(*shared);
                (void)ctx.kv_close(*shared);
                if (fork.ok()) {
                  kv = *fork;
                  outcomes[i].hit = true;
                }
              }
            }
            if (!outcomes[i].hit) {
              kv = *ctx.kv_tmp();
              (void)co_await ctx.pred(kv, corpus.doc(topic));
              if (topic < config.cache_top_k && !ctx.kv_exists(path)) {
                StatusOr<KvHandle> copy = ctx.kv_fork(kv);
                if (copy.ok()) {
                  if (ctx.kv_link(*copy, path).ok()) {
                    (void)ctx.kv_chmod(*copy, kModeShared);
                  }
                  (void)ctx.kv_close(*copy);
                }
              }
            }
            StatusOr<std::vector<Distribution>> dists =
                co_await ctx.pred(kv, corpus.MakeQuery(topic, i));
            if (!dists.ok()) {
              co_return;
            }
            TokenId t = dists->back().Argmax();
            for (uint32_t step = 1; step < config.answer_tokens; ++step) {
              StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
              if (!d.ok()) {
                co_return;
              }
              t = d->back().Argmax();
            }
            co_return;
          },
          [&, i](LipId) { outcomes[i].end = sim.now(); });
    });
  }
  sim.Run();

  std::printf("req  topic  cached  latency_ms\n");
  std::printf("---  -----  ------  ----------\n");
  for (size_t i = 0; i < outcomes.size(); ++i) {
    std::printf("%3zu  %5zu  %6s  %10.1f\n", i, outcomes[i].topic,
                outcomes[i].hit ? "hit" : "miss",
                ToMillis(outcomes[i].end - outcomes[i].start));
  }
  std::printf("\ncache files: ");
  for (const std::string& name : server.kvfs().List("/cache/")) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n");
  return 0;
}
