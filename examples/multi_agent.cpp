// Cooperative multi-agent system over server-side IPC (paper §2.2, §4.3).
//
// Three LIPs form a pipeline living entirely inside Symphony:
//   researcher  — fetches documents with the search tool and broadcasts
//                 summaries on the "notes" channel;
//   critic      — scores each note with the model's own log-probabilities
//                 and forwards accepted ones on "approved";
//   writer      — folds approved notes into its KV context and generates the
//                 final answer.
// Inter-agent communication is ctx.send/ctx.recv — no client in the loop.
//
// Build & run:  ./build/examples/multi_agent
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/serve/server.h"

using namespace symphony;

namespace {
constexpr int kNotes = 4;
}

int main() {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});
  (void)server.tools().Register(ToolRegistry::Lookup("search", Millis(60)));

  // --- Researcher -----------------------------------------------------
  server.Launch("researcher", [&](LipContext& ctx) -> Task {
    for (int i = 0; i < kNotes; ++i) {
      StatusOr<std::string> doc =
          co_await ctx.call_tool("search", "subtopic-" + std::to_string(i));
      if (!doc.ok()) {
        co_await ctx.send("notes", "ERROR");
        continue;
      }
      co_await ctx.send("notes", *doc);
      ctx.emit("[researcher] sent note " + std::to_string(i) + "\n");
    }
    co_return;
  });

  // --- Critic -----------------------------------------------------------
  server.Launch("critic", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred(kv, ctx.tokenizer().Encode("w500 w501"));
    std::vector<std::pair<double, std::string>> scored;
    for (int i = 0; i < kNotes; ++i) {
      std::string note = co_await ctx.recv("notes");
      std::vector<TokenId> tokens = ctx.tokenizer().Encode(note);
      if (tokens.size() > 8) {
        tokens.resize(8);
      }
      // Score the note by the model's log-probability of its tokens given
      // the critic's context: a crude "relevance" judge.
      StatusOr<KvHandle> probe = ctx.kv_fork(kv);
      if (!probe.ok()) {
        continue;
      }
      StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(*probe, tokens);
      (void)ctx.kv_close(*probe);
      if (!dists.ok()) {
        continue;
      }
      double score = 0.0;
      for (size_t j = 1; j < tokens.size(); ++j) {
        score += (*dists)[j - 1].LogProb(tokens[j]);
      }
      score /= static_cast<double>(tokens.size());
      ctx.emit("[critic] note " + std::to_string(i) + " score " +
               std::to_string(score) + "\n");
      scored.emplace_back(score, std::move(note));
    }
    // Approve the most-plausible half.
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    size_t keep = scored.size() / 2;
    co_await ctx.send("approved_count", std::to_string(keep));
    for (size_t i = 0; i < keep; ++i) {
      co_await ctx.send("approved", scored[i].second);
    }
    co_return;
  });

  // --- Writer -------------------------------------------------------------
  LipId writer = server.Launch("writer", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    (void)co_await ctx.pred(kv, ctx.tokenizer().Encode("w600 w601 w602"));
    int expected = std::stoi(co_await ctx.recv("approved_count"));
    for (int i = 0; i < expected; ++i) {
      std::string note = co_await ctx.recv("approved");
      std::vector<TokenId> tokens = ctx.tokenizer().Encode(note);
      if (tokens.size() > 8) {
        tokens.resize(8);
      }
      (void)co_await ctx.pred(kv, tokens);
    }
    // Generate the final answer over the merged context.
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, 260);
    if (!d.ok()) {
      co_return;
    }
    std::string answer;
    TokenId t = d->back().Argmax();
    for (int step = 0; step < 16 && t != kEosToken; ++step) {
      answer += ctx.tokenizer().TokenToString(t) + " ";
      StatusOr<std::vector<Distribution>> next = co_await ctx.pred1(kv, t);
      if (!next.ok()) {
        break;
      }
      t = next->back().Argmax();
    }
    ctx.emit("[writer] context " + std::to_string(*ctx.kv_len(kv)) +
             " tokens, answer: " + answer + "\n");
    co_return;
  });

  sim.Run();

  // Interleave the agents' logs in launch order.
  for (LipId lip = 2; lip <= writer; ++lip) {
    std::printf("%s", server.runtime().Output(lip).c_str());
  }
  std::printf("\nIPC messages exchanged: %lu, virtual time: %.1f ms\n",
              static_cast<unsigned long>(server.runtime().stats().ipc_messages),
              ToMillis(sim.now()));
  return 0;
}
