// Server-side function calling (paper §2.2, §4.3).
//
// An agent LIP interleaves generation with tool execution entirely inside
// the serving system: it decodes until the model "requests" a tool, invokes
// the tool with call_tool (no client round trip), feeds the result back into
// its KV file, and continues. While the thread blocks on a slow tool,
// Symphony offloads its KV cache to host memory and restores it lazily on
// the next pred.
//
// Build & run:  ./build/examples/function_calling
#include <cstdio>
#include <string>
#include <vector>

#include "src/serve/server.h"

using namespace symphony;

int main(int argc, char** argv) {
  // Pass --trace to dump a chrome://tracing / Perfetto timeline.
  bool want_trace = argc > 1 && std::string(argv[1]) == "--trace";
  TraceRecorder trace;

  Simulator sim;
  ServerOptions options;
  options.offload_kv_on_tool_io = true;
  options.min_io_for_offload = Millis(20);
  if (want_trace) {
    options.trace = &trace;
  }
  SymphonyServer server(&sim, options);
  (void)server.tools().Register(ToolRegistry::Calculator("calc", Millis(2)));
  (void)server.tools().Register(ToolRegistry::Lookup("search", Millis(120)));

  LipId lip = server.Launch("agent", [&](LipContext& ctx) -> Task {
    KvHandle kv = *ctx.kv_tmp();
    // Seed the context with the task description.
    std::vector<TokenId> task =
        ctx.tokenizer().Encode("w900 w901 w902 w903 w904 w905");
    (void)co_await ctx.pred(kv, task);

    // An agent loop: think a few tokens, call a tool, fold the result back
    // into the context, repeat. (A real agent would parse tool calls out of
    // the generated tokens; here the loop alternates deterministically so
    // the example stays readable.)
    struct Step {
      const char* tool;
      const char* args;
    };
    const std::vector<Step> plan = {
        {"search", "symphony paper"},
        {"calc", "7 * 6"},
        {"search", "kv cache"},
    };
    TokenId t = 260;
    for (const Step& step : plan) {
      // Think: generate a short chain of tokens.
      for (int i = 0; i < 4; ++i) {
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
        if (!d.ok()) {
          co_return;
        }
        t = d->back().Argmax();
      }
      // Act: run the tool on the server, no client round trip.
      SimTime before = ctx.now();
      StatusOr<std::string> result = co_await ctx.call_tool(step.tool, step.args);
      if (!result.ok()) {
        co_return;
      }
      ctx.emit(std::string(step.tool) + "(" + step.args + ") -> " + *result +
               "   [" + std::to_string(ToMillis(ctx.now() - before)) + " ms]\n");
      // Observe: append the tool result to the KV context.
      std::vector<TokenId> observation = ctx.tokenizer().Encode(*result);
      if (observation.size() > 12) {
        observation.resize(12);
      }
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred(kv, observation);
      if (!d.ok()) {
        co_return;
      }
      t = d->back().Argmax();
    }
    ctx.emit("context length at exit: " + std::to_string(*ctx.kv_len(kv)) + " tokens\n");
    co_return;
  });

  sim.Run();
  std::printf("%s", server.runtime().Output(lip).c_str());
  std::printf("\nKV pages offloaded during tool waits: %lu, restored: %lu\n",
              static_cast<unsigned long>(server.kvfs().stats().offloaded_pages),
              static_cast<unsigned long>(server.kvfs().stats().restored_pages));
  std::printf("total virtual time: %.1f ms\n", ToMillis(sim.now()));
  if (want_trace) {
    Status st = trace.WriteChromeJson("function_calling_trace.json");
    std::printf("%s\n", st.ok()
                             ? "trace written to function_calling_trace.json "
                               "(open in chrome://tracing or ui.perfetto.dev)"
                             : st.ToString().c_str());
  }
  return 0;
}
