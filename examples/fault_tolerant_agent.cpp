// Fault-tolerant agent: a multi-turn tool-calling LIP survives its replica
// being killed mid-run (src/recovery).
//
// With ClusterOptions::enable_recovery, the cluster journals every syscall a
// LIP makes (pred results, tool outputs, sleeps, IPC). When KillReplica
// halts the agent's replica, the cluster relaunches the program on a
// survivor and fast-forwards it from the journal: already-journaled
// syscalls are answered instantly (the KV cache is rebuilt by snapshot
// import or recompute, whichever the cost model says is cheaper) and
// execution goes live exactly where the failure hit. Because the journal
// pins every nondeterministic input, the recovered run's output is
// bit-identical to an undisturbed one — this example asserts it.
//
// Build & run:  ./build/examples/fault_tolerant_agent
#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "src/serve/cluster.h"

using namespace symphony;

namespace {

// A three-turn agent: each turn samples a few "thought" tokens (temperature
// sampling — deliberately nondeterministic-looking, pinned by the journaled
// RNG seed), calls the calculator on values it generated, and folds the
// result back into its context.
Task Agent(LipContext& ctx) {
  KvHandle kv = *ctx.kv_tmp();
  std::vector<TokenId> task =
      ctx.tokenizer().Encode("w10 w11 w12 w13 w14 w15 w16 w17");
  (void)co_await ctx.pred(kv, task);

  TokenId t = 300;
  for (int turn = 0; turn < 3; ++turn) {
    int operand = 0;
    for (int i = 0; i < 5; ++i) {
      StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
      if (!d.ok()) {
        co_return;
      }
      t = d->back().Sample(ctx.uniform(), 0.8);
      operand = (operand * 7 + static_cast<int>(t)) % 1000;
      ctx.emit(" " + std::to_string(t));
    }
    std::string args =
        std::to_string(operand) + " + " + std::to_string(turn * 100);
    StatusOr<std::string> result = co_await ctx.call_tool("calc", args);
    if (!result.ok()) {
      co_return;
    }
    ctx.emit(" | calc(" + args + ")=" + *result + "\n");
    std::vector<TokenId> observation = ctx.tokenizer().Encode(*result);
    (void)co_await ctx.pred(kv, observation);
    co_await ctx.sleep(Millis(3));  // e.g. waiting on an external event.
  }
  co_return;
}

struct RunResult {
  std::string output;
  double finish_s = 0.0;
  uint64_t failovers = 0;
};

RunResult Run(bool inject_failure) {
  Simulator sim;
  ClusterOptions options;
  options.replicas = 2;
  options.enable_recovery = true;
  options.recovery_mode = RecoveryMode::kAuto;
  SymphonyCluster cluster(&sim, options);
  for (size_t i = 0; i < cluster.replica_count(); ++i) {
    (void)cluster.replica(i).tools().Register(
        ToolRegistry::Calculator("calc", Millis(2)));
  }

  SymphonyCluster::ClusterLip id = cluster.Launch("agent", "", Agent);
  if (inject_failure) {
    // Pull the plug mid-run: turn 2 of 3 is in flight at 20ms.
    sim.RunUntil(Millis(20));
    Status killed = cluster.KillReplica(id.replica);
    std::printf("  t=20ms  KillReplica(%zu): %s\n", id.replica,
                killed.ok() ? "ok" : killed.message().c_str());
    SymphonyCluster::ClusterLip now = cluster.Locate(id);
    std::printf("  agent restored on replica %zu (mode: %s)\n", now.replica,
                RecoveryModeName(cluster.options().recovery_mode));
  }
  sim.Run();
  RunResult r;
  r.output = cluster.Output(id);
  r.finish_s = ToSeconds(sim.now());
  r.failovers = cluster.Snapshot().failovers;
  return r;
}

}  // namespace

int main() {
  std::printf("fault_tolerant_agent: kill a replica mid-run, compare outputs\n\n");

  std::printf("baseline (no failure):\n");
  RunResult baseline = Run(/*inject_failure=*/false);
  std::printf("%s  finished at %.3fs\n\n", baseline.output.c_str(),
              baseline.finish_s);

  std::printf("with failure injection:\n");
  RunResult recovered = Run(/*inject_failure=*/true);
  std::printf("%s  finished at %.3fs (failovers=%llu)\n\n",
              recovered.output.c_str(), recovered.finish_s,
              static_cast<unsigned long long>(recovered.failovers));

  assert(recovered.failovers == 1);
  if (recovered.output == baseline.output) {
    std::printf("outputs are BIT-IDENTICAL across the failure.\n");
    return 0;
  }
  std::printf("ERROR: outputs diverged!\n");
  return 1;
}
