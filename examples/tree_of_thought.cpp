// Tree-of-Thought reasoning as a single LIP (paper §4.3).
//
// One LIP explores a tree of hypotheses: each node forks its parent's KV
// file (sharing all prefix pages copy-on-write), generates a "thought" of a
// few tokens, scores it by the model's own log-probabilities, and recursively
// expands only the most promising children. The whole search — branching,
// scoring, pruning, joining — is application logic running inside the
// serving system; the server only ever sees pred calls.
//
// Build & run:  ./build/examples/tree_of_thought
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/serve/server.h"

using namespace symphony;

namespace {

constexpr int kBranchFactor = 3;  // Children explored per node.
constexpr int kDepth = 3;         // Tree depth.
constexpr int kThoughtTokens = 6; // Tokens per thought.

struct SearchState {
  double best_score = -1e30;
  std::string best_path;
  int nodes_explored = 0;
};

// Expands one node: generates kBranchFactor thoughts from `kv`, recursing on
// every child (each in its own thread), accumulating the best leaf.
Task Expand(LipContext& ctx, KvHandle kv, int depth, double score,
            std::string path, SearchState* search) {
  ++search->nodes_explored;
  if (depth == kDepth) {
    if (score > search->best_score) {
      search->best_score = score;
      search->best_path = path;
    }
    (void)ctx.kv_close(kv);
    co_return;
  }

  std::vector<ThreadId> children;
  for (int b = 0; b < kBranchFactor; ++b) {
    // Each branch forks the node's KV: prefix pages shared, no copies.
    StatusOr<KvHandle> child_kv = ctx.kv_fork(kv);
    if (!child_kv.ok()) {
      continue;
    }
    KvHandle child = *child_kv;
    children.push_back(ctx.spawn([&ctx, child, b, depth, score, path,
                                  search](LipContext& inner) -> Task {
      // Sample a thought: diversify branches with temperature sampling.
      double branch_score = score;
      std::string branch_path = path + (path.empty() ? "" : "-") +
                                std::to_string(depth) + "." + std::to_string(b);
      StatusOr<uint64_t> len = inner.kv_len(child);
      if (!len.ok()) {
        co_return;
      }
      TokenId t = kUnkToken;
      for (int step = 0; step < kThoughtTokens; ++step) {
        TokenId feed = t == kUnkToken ? static_cast<TokenId>(260 + b) : t;
        StatusOr<std::vector<Distribution>> d = co_await inner.pred1(child, feed);
        if (!d.ok()) {
          co_return;
        }
        t = d->back().Sample(inner.uniform(), /*temperature=*/1.2);
        branch_score += d->back().LogProb(t);  // Model's own confidence.
      }
      // Recurse: the child coroutine continues the search.
      co_await Expand(inner, child, depth + 1, branch_score, branch_path, search);
      co_return;
    }));
  }
  for (ThreadId child : children) {
    co_await ctx.join(child);
  }
  (void)ctx.kv_close(kv);
  co_return;
}

}  // namespace

int main() {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});

  SearchState search;
  server.Launch("tree-of-thought", [&](LipContext& ctx) -> Task {
    KvHandle root = *ctx.kv_tmp();
    std::vector<TokenId> problem =
        ctx.tokenizer().Encode("w40 w41 w42 w43 w44 w45 w46 w47");
    (void)co_await ctx.pred(root, problem);
    co_await Expand(ctx, root, 0, 0.0, "", &search);
    co_return;
  });
  sim.Run();

  std::printf("explored %d nodes in %.2f virtual seconds\n",
              search.nodes_explored, ToSeconds(sim.now()));
  std::printf("best path: %s  (score %.2f)\n", search.best_path.c_str(),
              search.best_score);
  const PagePoolStats& pool = server.kvfs().pool().stats();
  std::printf("page allocations: %lu, COW copies: %lu (prefix pages shared "
              "across the whole tree)\n",
              static_cast<unsigned long>(pool.allocations),
              static_cast<unsigned long>(pool.cow_copies));
  return 0;
}
