// Recursion of Thought (paper §2.1 cites it [31]): divide-and-conquer
// reasoning with per-subproblem contexts, composed with KVFS operations.
//
// Solve(problem, depth):
//   depth 0 — generate a short solution in a fresh KV context;
//   else    — split the problem, recursively solve both halves, extract just
//             the solution tokens from each child context (kv_extract),
//             merge them after the parent's problem statement (kv_merge),
//             and generate the final answer over the combined context.
//
// The point: each subproblem reasons in a *small* context (cheap attention),
// and only distilled results flow upward — a generation strategy the paper
// says cannot be expressed through prompt APIs or predefined cache
// structures. Merged KV reuses records across contexts (PromptCache-style
// approximate attention; see DESIGN.md).
//
// Build & run:  ./build/examples/recursion_of_thought
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "src/serve/server.h"

using namespace symphony;

namespace {

constexpr int kSolutionTokens = 8;

struct Stats {
  int subproblems = 0;
  uint64_t max_context = 0;
};

// Solves `problem`, returning a KV handle holding ONLY the solution tokens.
ValueTask<StatusOr<KvHandle>> Solve(LipContext& ctx, std::vector<TokenId> problem,
                                    int depth, Stats* stats) {
  ++stats->subproblems;
  KvHandle kv = *ctx.kv_tmp();

  if (depth > 0) {
    // Divide: solve both halves, then fold their solutions into our context.
    size_t mid = problem.size() / 2;
    std::vector<TokenId> left_problem(problem.begin(), problem.begin() +
                                                           static_cast<long>(mid));
    std::vector<TokenId> right_problem(problem.begin() + static_cast<long>(mid),
                                       problem.end());
    StatusOr<KvHandle> left = co_await Solve(ctx, left_problem, depth - 1, stats);
    if (!left.ok()) {
      co_return left.status();
    }
    StatusOr<KvHandle> right = co_await Solve(ctx, right_problem, depth - 1, stats);
    if (!right.ok()) {
      co_return right.status();
    }
    // Parent context = problem ++ left solution ++ right solution.
    (void)co_await ctx.pred(kv, problem);
    std::vector<KvHandle> parts = {kv, *left, *right};
    StatusOr<KvHandle> combined = ctx.kv_merge(parts);
    (void)ctx.kv_close(*left);
    (void)ctx.kv_close(*right);
    (void)ctx.kv_close(kv);
    if (!combined.ok()) {
      co_return combined.status();
    }
    kv = *combined;
  } else {
    (void)co_await ctx.pred(kv, problem);
  }

  // Conquer: generate the solution over whatever context we have.
  StatusOr<uint64_t> len_before = ctx.kv_len(kv);
  if (!len_before.ok()) {
    co_return len_before.status();
  }
  stats->max_context = std::max(stats->max_context, *len_before);
  StatusOr<TokenRecord> tail = ctx.kv_read(kv, *len_before - 1);
  if (!tail.ok()) {
    co_return tail.status();
  }
  TokenId t = static_cast<TokenId>(kFirstWordToken + 77);  // "solve" marker.
  for (int i = 0; i < kSolutionTokens; ++i) {
    StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
    if (!d.ok()) {
      co_return d.status();
    }
    t = d->back().Argmax();
  }
  // Distill: keep only the generated solution tokens.
  StatusOr<uint64_t> len_after = ctx.kv_len(kv);
  if (!len_after.ok()) {
    co_return len_after.status();
  }
  std::vector<uint64_t> keep(static_cast<size_t>(*len_after - *len_before));
  std::iota(keep.begin(), keep.end(), *len_before);
  StatusOr<KvHandle> solution = ctx.kv_extract(kv, keep);
  (void)ctx.kv_close(kv);
  if (!solution.ok()) {
    co_return solution.status();
  }
  co_return *solution;
}

}  // namespace

int main() {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});

  Stats stats;
  std::string answer;
  server.Launch("rot", [&](LipContext& ctx) -> Task {
    std::vector<TokenId> problem;
    for (int i = 0; i < 64; ++i) {
      problem.push_back(static_cast<TokenId>(kFirstWordToken + 200 + i));
    }
    StatusOr<KvHandle> solution = co_await Solve(ctx, problem, /*depth=*/2, &stats);
    if (!solution.ok()) {
      co_return;
    }
    StatusOr<uint64_t> len = ctx.kv_len(*solution);
    for (uint64_t i = 0; len.ok() && i < *len; ++i) {
      StatusOr<TokenRecord> rec = ctx.kv_read(*solution, i);
      if (rec.ok()) {
        answer += ctx.tokenizer().TokenToString(rec->token) + " ";
      }
    }
    co_return;
  });
  sim.Run();

  std::printf("subproblems solved: %d (depth-2 binary recursion = 7)\n",
              stats.subproblems);
  std::printf("largest single context: %lu tokens (vs flat ~%d + reasoning)\n",
              static_cast<unsigned long>(stats.max_context), 64);
  std::printf("final answer tokens: %s\n", answer.c_str());
  std::printf("virtual time: %.1f ms\n", ToMillis(sim.now()));
  return 0;
}
