// Constrained decoding inside a LIP (paper §2.3, §4.1).
//
// Because pred returns the full next-token distribution, a LIP can integrate
// any state machine into its generation loop. This example generates (1) a
// syntactically valid JSON value using the incremental JsonMachine, and
// (2) a string matching a phone-number regex using the DFA-backed
// TokenConstraint — no serving-system support needed for either.
//
// Build & run:  ./build/examples/constrained_json
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/decode/json_machine.h"
#include "src/decode/regex.h"
#include "src/serve/server.h"

using namespace symphony;

int main() {
  Simulator sim;
  SymphonyServer server(&sim, ServerOptions{});

  std::string json_out;
  std::string phone_out;

  LipId lip = server.Launch("constrained", [&](LipContext& ctx) -> Task {
    const Tokenizer& tokenizer = ctx.tokenizer();

    // ---- JSON mode -----------------------------------------------------
    {
      KvHandle kv = *ctx.kv_tmp();
      std::vector<TokenId> prompt = tokenizer.Encode("w77 w78 w79");
      StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
      if (!dists.ok()) {
        co_return;
      }
      JsonMachine machine;
      // JSON allows unlimited whitespace; mask it out (as production JSON
      // modes do) so generation always makes structural progress.
      auto allows = [&](TokenId tok) {
        if (tok >= kFirstByteToken && tok < kFirstWordToken) {
          char c = static_cast<char>(tok - kFirstByteToken);
          if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
            return false;
          }
        }
        return machine.AllowsToken(tokenizer, tok);
      };
      Distribution dist = dists->back();
      for (int step = 0; step < 24 && !machine.Done(); ++step) {
        TokenId t = dist.GreedyMasked(allows);
        if (t == kUnkToken || t == kEosToken) {
          break;
        }
        json_out += tokenizer.TokenToString(t);
        machine.AdvanceToken(tokenizer, t);
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
        if (!d.ok()) {
          co_return;
        }
        dist = d->back();
      }
      // Token budget reached: close any open structures deterministically.
      // Only a program can do this kind of repair — a prompt API could not.
      for (int guard = 0; guard < 32 && !machine.Done(); ++guard) {
        TokenId closer = kUnkToken;
        for (TokenId tok = kFirstByteToken; tok < kFirstWordToken; ++tok) {
          if (!machine.AllowsToken(tokenizer, tok)) {
            continue;
          }
          JsonMachine probe = machine.Probe();
          probe.AdvanceToken(tokenizer, tok);
          if (probe.Done() || probe.Depth() < machine.Depth()) {
            closer = tok;
            break;
          }
        }
        if (closer == kUnkToken) {
          break;
        }
        json_out += tokenizer.TokenToString(closer);
        machine.AdvanceToken(tokenizer, closer);
        (void)co_await ctx.pred1(kv, closer);
      }
    }

    // ---- Regex constraint ------------------------------------------------
    {
      StatusOr<std::unique_ptr<Dfa>> dfa = CompileRegex("\\(\\d{3}\\) \\d{3}-\\d{4}");
      if (!dfa.ok()) {
        co_return;
      }
      TokenConstraint constraint(dfa->get(), &tokenizer);
      KvHandle kv = *ctx.kv_tmp();
      std::vector<TokenId> prompt = tokenizer.Encode("w88 w89");
      StatusOr<std::vector<Distribution>> dists = co_await ctx.pred(kv, prompt);
      if (!dists.ok()) {
        co_return;
      }
      Dfa::StateId state = constraint.start();
      Distribution dist = dists->back();
      for (int step = 0; step < 32; ++step) {
        TokenId t = dist.GreedyMasked(
            [&](TokenId tok) { return constraint.Allows(state, tok); });
        if (t == kUnkToken || t == kEosToken) {
          break;
        }
        phone_out += tokenizer.TokenToString(t);
        state = constraint.Advance(state, t);
        StatusOr<std::vector<Distribution>> d = co_await ctx.pred1(kv, t);
        if (!d.ok()) {
          co_return;
        }
        dist = d->back();
        if (constraint.IsAccept(state)) {
          break;
        }
      }
    }
    co_return;
  });
  (void)lip;

  sim.Run();

  JsonMachine validator;
  bool json_valid = validator.FeedAll(json_out) && validator.Done();
  std::printf("JSON mode output:   %s\n", json_out.c_str());
  std::printf("  -> %s\n", json_valid ? "valid JSON" : "INVALID JSON (bug!)");

  std::unique_ptr<Dfa> dfa = *CompileRegex("\\(\\d{3}\\) \\d{3}-\\d{4}");
  std::printf("regex-constrained:  %s\n", phone_out.c_str());
  std::printf("  -> %s\n", dfa->Matches(phone_out) ? "matches (ddd) ddd-dddd"
                                                   : "NO MATCH (bug!)");
  return 0;
}
